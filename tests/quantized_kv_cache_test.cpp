// Equivalence suite for the incrementally-quantized, chunk-planar KV cache:
// the hot path must be *bit-identical* to quantize-from-scratch across
// append / rescale / evict-compact interleavings (ISSUE 4 acceptance).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/expsum.h"
#include "common/rng.h"
#include "core/attention_backends.h"
#include "core/exact_attention.h"
#include "core/quantized_kv_cache.h"
#include "core/token_picker.h"
#include "fixedpoint/chunks.h"
#include "model/kv_cache.h"

namespace topick {
namespace {

// Float KV rows kept by the test as the from-scratch reference — and, since
// the cache retains no floats of its own, registered as its RescaleSource so
// whole-head rescales re-read exact rows (the bit-identity contract).
struct ShadowKv final : RescaleSource {
  std::size_t head_dim;
  std::vector<std::vector<float>> keys, values;
  std::vector<std::size_t> ids;

  explicit ShadowKv(std::size_t dim) : head_dim(dim) {}

  const float* key_row(std::size_t id) const override {
    return keys[pos_of(id)].data();
  }
  const float* value_row(std::size_t id) const override {
    return values[pos_of(id)].data();
  }
  std::size_t pos_of(std::size_t id) const {
    const auto it = std::find(ids.begin(), ids.end(), id);
    EXPECT_NE(it, ids.end()) << "rescale asked for unknown id " << id;
    return static_cast<std::size_t>(it - ids.begin());
  }

  void append(std::vector<float> k, std::vector<float> v, std::size_t id) {
    keys.push_back(std::move(k));
    values.push_back(std::move(v));
    ids.push_back(id);
  }

  void evict(const std::vector<std::size_t>& dead) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < ids.size(); ++r) {
      if (std::find(dead.begin(), dead.end(), ids[r]) != dead.end()) continue;
      keys[w] = keys[r];
      values[w] = values[r];
      ids[w] = ids[r];
      ++w;
    }
    keys.resize(w);
    values.resize(w);
    ids.resize(w);
  }

  // Contiguous gather (what the pre-cache serve engine attended over).
  void gather(std::vector<float>* k_flat, std::vector<float>* v_flat) const {
    k_flat->clear();
    v_flat->clear();
    for (std::size_t r = 0; r < ids.size(); ++r) {
      k_flat->insert(k_flat->end(), keys[r].begin(), keys[r].end());
      v_flat->insert(v_flat->end(), values[r].begin(), values[r].end());
    }
  }
};

std::vector<float> random_row(Rng& rng, std::size_t dim, double scale) {
  std::vector<float> row(dim);
  for (auto& x : row) x = static_cast<float>(rng.normal() * scale);
  return row;
}

void expect_same_result(const TokenPickerResult& a, const TokenPickerResult& b) {
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].token, b.decisions[i].token);
    EXPECT_EQ(a.decisions[i].chunks_fetched, b.decisions[i].chunks_fetched);
    EXPECT_EQ(a.decisions[i].kept, b.decisions[i].kept);
    EXPECT_EQ(a.decisions[i].final_score, b.decisions[i].final_score);
    EXPECT_EQ(a.decisions[i].upper_bound_at_prune,
              b.decisions[i].upper_bound_at_prune);
  }
  EXPECT_EQ(a.stats.k_bits_fetched, b.stats.k_bits_fetched);
  EXPECT_EQ(a.stats.v_bits_fetched, b.stats.v_bits_fetched);
  EXPECT_EQ(a.stats.k_bits_baseline, b.stats.k_bits_baseline);
  EXPECT_EQ(a.stats.v_bits_baseline, b.stats.v_bits_baseline);
  EXPECT_EQ(a.stats.tokens_total, b.stats.tokens_total);
  EXPECT_EQ(a.stats.tokens_kept, b.stats.tokens_kept);
  EXPECT_EQ(a.stats.chunk_histogram, b.stats.chunk_histogram);
  ASSERT_EQ(a.output.size(), b.output.size());
  for (std::size_t d = 0; d < a.output.size(); ++d) {
    EXPECT_EQ(a.output[d], b.output[d]);
  }
  EXPECT_EQ(a.log_denominator, b.log_denominator);
  EXPECT_EQ(a.log_denominator_estimator, b.log_denominator_estimator);
}

TEST(QuantizedKvStore, PlaneRowsSumToFullKey) {
  Rng rng(0xabc1);
  const std::size_t dim = 16;
  fx::QuantParams params;
  params.scale = 0.01f;

  QuantizedKvStore store;
  store.reset(params, params, dim);
  std::vector<std::int16_t> k_row(dim), v_row(dim);
  for (int t = 0; t < 5; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      k_row[d] = static_cast<std::int16_t>(
          static_cast<std::int32_t>(rng.uniform_index(4096)) - 2048);
      v_row[d] = k_row[d];
    }
    store.push_row(k_row.data(), v_row.data());
  }

  const QuantizedKvView view = store.view();
  for (std::size_t t = 0; t < view.len; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      std::int32_t sum = 0;
      for (int b = 0; b < params.num_chunks(); ++b) {
        sum += view.key_plane_row(b, t)[d];
      }
      EXPECT_EQ(sum, view.key(t)[d]) << "token " << t << " dim " << d;
    }
  }
}

// Core invariant: the cache's quantized bits equal quantize_kv() run fresh on
// the live float set, after every single mutation.
void expect_matches_from_scratch(const QuantizedKvCache& cache,
                                 const ShadowKv& shadow) {
  ASSERT_EQ(cache.len(), shadow.ids.size());
  if (cache.len() == 0) return;
  std::vector<float> k_flat, v_flat;
  shadow.gather(&k_flat, &v_flat);
  const KvHeadView view{k_flat.data(), v_flat.data(), shadow.ids.size(),
                        shadow.head_dim};
  const QuantizedKv fresh = quantize_kv(view, cache.config().base);

  const QuantizedKvView cached = cache.view();
  EXPECT_EQ(cached.key_params.scale, fresh.keys[0].params.scale);
  EXPECT_EQ(cached.value_params.scale, fresh.values[0].params.scale);
  for (std::size_t t = 0; t < cache.len(); ++t) {
    EXPECT_EQ(cache.id_at(t), shadow.ids[t]);
    for (std::size_t d = 0; d < shadow.head_dim; ++d) {
      EXPECT_EQ(cached.key(t)[d], fresh.keys[t].values[d]);
      EXPECT_EQ(cached.value(t)[d], fresh.values[t].values[d]);
    }
  }
}

TEST(QuantizedKvCache, AppendOnlyMatchesFromScratch) {
  Rng rng(0x5eed);
  const std::size_t dim = 24;
  QuantizedKvCache cache(dim);
  ShadowKv shadow(dim);
  cache.set_rescale_source(&shadow);
  for (std::size_t t = 0; t < 64; ++t) {
    auto k = random_row(rng, dim, 1.0);
    auto v = random_row(rng, dim, 1.0);
    cache.append(k, v, t);
    shadow.append(k, v, t);
    expect_matches_from_scratch(cache, shadow);
  }
  // Random data sets a new max only O(log n) times.
  EXPECT_LT(cache.key_rescales(), 20u);
  EXPECT_GT(cache.key_rescales(), 0u);
}

TEST(QuantizedKvCache, EngineeredMidDecodeRescale) {
  Rng rng(0x1234);
  const std::size_t dim = 16;
  QuantizedKvCache cache(dim);
  ShadowKv shadow(dim);
  cache.set_rescale_source(&shadow);
  // Quiet prefix, then a spike 10x past the running max: the spike append
  // must trigger exactly one whole-head requantize and stay exact.
  for (std::size_t t = 0; t < 20; ++t) {
    auto k = random_row(rng, dim, 0.5);
    auto v = random_row(rng, dim, 0.5);
    cache.append(k, v, t);
    shadow.append(k, v, t);
  }
  const auto before = cache.key_rescales();
  auto k = random_row(rng, dim, 0.5);
  k[3] = 40.0f;  // new record by an order of magnitude
  auto v = random_row(rng, dim, 0.5);
  cache.append(k, v, 20);
  shadow.append(k, v, 20);
  EXPECT_EQ(cache.key_rescales(), before + 1);
  expect_matches_from_scratch(cache, shadow);

  // Follow-up quiet appends must not rescale again.
  const auto after_spike = cache.key_rescales();
  for (std::size_t t = 21; t < 40; ++t) {
    auto k2 = random_row(rng, dim, 0.5);
    auto v2 = random_row(rng, dim, 0.5);
    cache.append(k2, v2, t);
    shadow.append(k2, v2, t);
  }
  EXPECT_EQ(cache.key_rescales(), after_spike);
  expect_matches_from_scratch(cache, shadow);
}

TEST(QuantizedKvCache, EvictingTheRecordHolderShrinksTheScale) {
  Rng rng(0x77);
  const std::size_t dim = 16;
  QuantizedKvCache cache(dim);
  ShadowKv shadow(dim);
  cache.set_rescale_source(&shadow);
  for (std::size_t t = 0; t < 12; ++t) {
    auto k = random_row(rng, dim, 0.5);
    if (t == 5) k[0] = 25.0f;  // the record holder
    auto v = random_row(rng, dim, 0.5);
    cache.append(k, v, t);
    shadow.append(k, v, t);
  }
  const float scale_with_spike = cache.key_params().scale;
  const std::vector<std::size_t> dead{5};
  EXPECT_EQ(cache.evict_ids(dead), 1u);
  shadow.evict(dead);
  EXPECT_LT(cache.key_params().scale, scale_with_spike);
  expect_matches_from_scratch(cache, shadow);
}

TEST(QuantizedKvCache, BulkAppendRowsMatchesFromScratch) {
  Rng rng(0xb01d);
  const std::size_t dim = 8;
  QuantizedKvCache cache(dim);
  ShadowKv shadow(dim);
  cache.set_rescale_source(&shadow);
  std::vector<float> k_rows, v_rows;
  const std::size_t count = 33;
  for (std::size_t t = 0; t < count; ++t) {
    auto k = random_row(rng, dim, 2.0);
    auto v = random_row(rng, dim, 2.0);
    k_rows.insert(k_rows.end(), k.begin(), k.end());
    v_rows.insert(v_rows.end(), v.begin(), v.end());
    shadow.append(k, v, t);
  }
  cache.append_rows(k_rows.data(), v_rows.data(), count, 0);
  // The bulk path computes the batch scale once.
  EXPECT_LE(cache.key_rescales(), 1u);
  expect_matches_from_scratch(cache, shadow);
}

// The acceptance-criterion suite: randomized append / evict interleavings;
// after every mutation, attention through the incremental cache must equal
// attention through the historical quantize-from-scratch path bit-for-bit —
// decisions, AccessStats, output, and both log denominators.
TEST(QuantizedKvCache, RandomizedInterleavingsAttendBitIdentical) {
  Rng rng(0xf00d);
  const std::size_t dim = 32;
  TokenPickerConfig config;
  config.estimator.threshold = 1e-3;

  QuantizedKvCache cache(dim, {config.quant, 1.0f});
  ShadowKv shadow(dim);
  cache.set_rescale_source(&shadow);
  TokenPickerAttention cached_op(config);
  TokenPickerAttention scratch_op(config);
  TokenPickerResult cached_result;

  std::vector<float> k_flat, v_flat;
  std::size_t next_id = 0;
  for (int op = 0; op < 300; ++op) {
    const auto roll = rng.uniform_index(10);
    if (roll < 6 || shadow.ids.size() < 2) {
      // Append, occasionally spiking to force a mid-decode rescale.
      const double scale = rng.uniform_index(12) == 0 ? 30.0 : 1.0;
      auto k = random_row(rng, dim, scale);
      auto v = random_row(rng, dim, scale);
      cache.append(k, v, next_id);
      shadow.append(k, v, next_id);
      ++next_id;
    } else {
      // Evict a random subset (sometimes including the record holder),
      // mirroring reclamation compaction.
      std::vector<std::size_t> dead;
      const std::size_t count = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < count && shadow.ids.size() - dead.size() > 1;
           ++i) {
        dead.push_back(shadow.ids[rng.uniform_index(shadow.ids.size())]);
      }
      cache.evict_ids(dead);
      shadow.evict(dead);
    }

    expect_matches_from_scratch(cache, shadow);

    const auto q = random_row(rng, dim, 1.0);
    cached_op.attend_cached(q, cache, &cached_result);
    shadow.gather(&k_flat, &v_flat);
    const KvHeadView view{k_flat.data(), v_flat.data(), shadow.ids.size(), dim};
    const TokenPickerResult fresh = scratch_op.attend(q, view);
    expect_same_result(cached_result, fresh);
    EXPECT_EQ(cached_result.oracle_dropped_mass, fresh.oracle_dropped_mass);
  }
  EXPECT_GT(cache.key_rescales() + cache.value_rescales(), 0u);
}

// The sourceless int-domain fallback against the float-sourced path over
// randomized append/evict interleavings. Identical inputs keep the two
// caches in lockstep on everything float-domain — ids, per-row maxima,
// scales, rescale times — so the only divergence is the stored integers:
// each fallback rescale re-rounds the current int16 row through a
// fixed-point ratio (within 1 ULP of the real-ratio grid) instead of
// re-reading floats. The drift is bounded per rescale and tracked here:
// allowed' = ratio * (allowed + 0.5) + 1.01 quantization steps.
TEST(QuantizedKvCache, SourcelessFallbackTracksFloatSourcedWithinDrift) {
  Rng rng(0xfa11);
  const std::size_t dim = 32;
  QuantizedKvCache sourced(dim);
  QuantizedKvCache fallback(dim);
  ShadowKv shadow(dim);
  sourced.set_rescale_source(&shadow);
  ASSERT_EQ(fallback.rescale_source(), nullptr);

  double allowed_k = 0.0, allowed_v = 0.0;
  std::size_t next_id = 0;
  for (int op = 0; op < 300; ++op) {
    const float old_k_scale = sourced.key_params().scale;
    const float old_v_scale = sourced.value_params().scale;
    const auto roll = rng.uniform_index(10);
    if (roll < 6 || shadow.ids.size() < 2) {
      const double scale = rng.uniform_index(12) == 0 ? 30.0 : 1.0;
      auto k = random_row(rng, dim, scale);
      auto v = random_row(rng, dim, scale);
      shadow.append(k, v, next_id);
      sourced.append(k, v, next_id);
      fallback.append(k, v, next_id);
      ++next_id;
    } else {
      std::vector<std::size_t> dead;
      const std::size_t count = 1 + rng.uniform_index(3);
      for (std::size_t i = 0; i < count && shadow.ids.size() - dead.size() > 1;
           ++i) {
        dead.push_back(shadow.ids[rng.uniform_index(shadow.ids.size())]);
      }
      sourced.evict_ids(dead);
      fallback.evict_ids(dead);
      shadow.evict(dead);
    }

    // Float-domain state never diverges: same ids, scales, rescale counts.
    ASSERT_EQ(fallback.len(), sourced.len());
    ASSERT_EQ(fallback.ids(), sourced.ids());
    ASSERT_EQ(fallback.key_params().scale, sourced.key_params().scale);
    ASSERT_EQ(fallback.value_params().scale, sourced.value_params().scale);
    ASSERT_EQ(fallback.key_rescales(), sourced.key_rescales());
    ASSERT_EQ(fallback.value_rescales(), sourced.value_rescales());

    if (sourced.key_params().scale != old_k_scale && old_k_scale != 1.0f) {
      allowed_k = static_cast<double>(old_k_scale) /
                      static_cast<double>(sourced.key_params().scale) *
                      (allowed_k + 0.5) +
                  1.01;
    }
    if (sourced.value_params().scale != old_v_scale && old_v_scale != 1.0f) {
      allowed_v = static_cast<double>(old_v_scale) /
                      static_cast<double>(sourced.value_params().scale) *
                      (allowed_v + 0.5) +
                  1.01;
    }

    const QuantizedKvView a = fallback.view();
    const QuantizedKvView b = sourced.view();
    for (std::size_t t = 0; t < sourced.len(); ++t) {
      for (std::size_t d = 0; d < dim; ++d) {
        EXPECT_LE(std::abs(static_cast<int>(a.key(t)[d]) -
                           static_cast<int>(b.key(t)[d])),
                  allowed_k + 0.5)
            << "op " << op << " token " << t << " dim " << d;
        EXPECT_LE(std::abs(static_cast<int>(a.value(t)[d]) -
                           static_cast<int>(b.value(t)[d])),
                  allowed_v + 0.5)
            << "op " << op << " token " << t << " dim " << d;
      }
    }
  }
  EXPECT_GT(sourced.key_rescales() + sourced.value_rescales(), 0u);
}

// Amortized mode (headroom > 1) gives up bit-exactness for fewer rescales,
// but the grid must always stay valid: scale in [max|x|/qmax, headroom *
// max|x|/qmax], so reconstruction error is bounded by scale/2 and nothing
// clips. Regression: the initial base scale (1.0) once leaked into
// small-magnitude data, quantizing everything to zero.
TEST(QuantizedKvCache, HeadroomAmortizesRescalesWithBoundedError) {
  Rng rng(0x4ead);
  const std::size_t dim = 16;
  QuantizedKvCache exact(dim, {fx::QuantParams{}, 1.0f});
  QuantizedKvCache amortized(dim, {fx::QuantParams{}, 2.0f});

  for (std::size_t t = 0; t < 200; ++t) {
    // Small-magnitude rows (far below the base scale of 1.0) with occasional
    // growth spurts that force the running max upward.
    const double mag = 0.01 * (1.0 + 0.05 * static_cast<double>(t));
    const auto k = random_row(rng, dim, mag);
    const auto v = random_row(rng, dim, mag);
    exact.append(k, v, t);
    amortized.append(k, v, t);

    const QuantizedKvView view = amortized.view();
    const float k_scale = view.key_params.scale;
    for (std::size_t d = 0; d < dim; ++d) {
      const float reconstructed =
          static_cast<float>(view.key(t)[d]) * k_scale;
      EXPECT_NEAR(reconstructed, k[d], 0.5f * k_scale + 1e-7f)
          << "token " << t << " dim " << d << " scale " << k_scale;
    }
  }
  // The whole point of the slack: strictly fewer whole-head requantizes.
  EXPECT_LT(amortized.key_rescales(), exact.key_rescales());
  EXPECT_GT(amortized.key_rescales(), 0u);
}

TEST(QuantizedKvCache, OracleGateOffZeroesDiagnosticOnly) {
  Rng rng(0x0a0a);
  const std::size_t dim = 16;
  // Threshold above the uniform 1/len probability so the instance actually
  // prunes (a pruned token is what gives the oracle nonzero dropped mass).
  TokenPickerConfig with_oracle;
  with_oracle.estimator.threshold = 5e-2;
  TokenPickerConfig no_oracle = with_oracle;
  no_oracle.compute_oracle_mass = false;

  QuantizedKvCache cache(dim, {with_oracle.quant, 1.0f});
  for (std::size_t t = 0; t < 40; ++t) {
    cache.append(random_row(rng, dim, 1.0), random_row(rng, dim, 1.0), t);
  }
  const auto q = random_row(rng, dim, 1.0);

  TokenPickerAttention on(with_oracle), off(no_oracle);
  TokenPickerResult r_on, r_off;
  on.attend_cached(q, cache, &r_on);
  off.attend_cached(q, cache, &r_off);
  EXPECT_GT(r_on.oracle_dropped_mass, 0.0);
  EXPECT_EQ(r_off.oracle_dropped_mass, 0.0);
  r_off.oracle_dropped_mass = r_on.oracle_dropped_mass;
  expect_same_result(r_on, r_off);
}

// Regression for the chunk_histogram overflow: >8 chunks per vector (e.g.
// chunk_bits = 1 -> 12 chunks) used to index past the array<8>. The clamp
// folds the tail into the last bucket; the total still counts every token.
TEST(QuantizedKvCache, ChunkHistogramClampsDeepChunkConfigs) {
  Rng rng(0xc1a);
  const std::size_t dim = 16;
  TokenPickerConfig config;
  config.quant.chunk_bits = 1;  // 12 one-bit chunks > 8 buckets
  config.estimator.threshold = 1e-3;

  QuantizedKvCache cache(dim, {config.quant, 1.0f});
  for (std::size_t t = 0; t < 24; ++t) {
    cache.append(random_row(rng, dim, 1.0), random_row(rng, dim, 1.0), t);
  }
  TokenPickerAttention op(config);
  TokenPickerResult result;
  op.attend_cached(random_row(rng, dim, 1.0), cache, &result);

  std::uint64_t total = 0;
  for (const auto c : result.stats.chunk_histogram) total += c;
  EXPECT_EQ(total, 24u);
  // Survivors fetch all 12 chunks; they must land in (clamped) bucket 7.
  EXPECT_GE(result.stats.chunk_histogram[7], result.stats.tokens_kept);
}

TEST(QuantizedKvCache, SyncToViewGrowsAndGuardsRestarts) {
  Rng rng(0x9e);
  const std::size_t dim = 8;
  std::vector<float> keys, values;
  auto grow = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto k = random_row(rng, dim, 1.0);
      const auto v = random_row(rng, dim, 1.0);
      keys.insert(keys.end(), k.begin(), k.end());
      values.insert(values.end(), v.begin(), v.end());
    }
  };

  QuantizedKvCache cache(dim);
  grow(5);
  sync_cache_to_view(cache,
                     {keys.data(), values.data(), 5, dim});
  EXPECT_EQ(cache.len(), 5u);
  grow(3);
  sync_cache_to_view(cache, {keys.data(), values.data(), 8, dim});
  EXPECT_EQ(cache.len(), 8u);

  // Restart: a different sequence of the same length must be detected via
  // the tail-row guard and rebuilt, not silently reused. The guard has no
  // floats to compare against anymore — it witnesses via stable ids + the
  // recorded row amax + a re-quantization of the tail bits.
  std::vector<float> keys2 = keys, values2 = values;
  for (auto& x : keys2) x += 1.0f;
  sync_cache_to_view(cache, {keys2.data(), values2.data(), 8, dim});
  auto expect_adopted = [&](const std::vector<float>& ks,
                            const std::vector<float>& vs) {
    ShadowKv shadow(dim);
    for (std::size_t t = 0; t < 8; ++t) {
      shadow.append({ks.begin() + static_cast<std::ptrdiff_t>(t * dim),
                     ks.begin() + static_cast<std::ptrdiff_t>((t + 1) * dim)},
                    {vs.begin() + static_cast<std::ptrdiff_t>(t * dim),
                     vs.begin() + static_cast<std::ptrdiff_t>((t + 1) * dim)},
                    t);
    }
    expect_matches_from_scratch(cache, shadow);
  };
  expect_adopted(keys2, values2);

  // Adversarial restart for the amax leg of the witness: reverse the tail
  // row in place. Its max|x| is unchanged, so only the re-quantized-bits
  // check can catch the divergence.
  std::vector<float> keys3 = keys2;
  std::reverse(keys3.end() - static_cast<std::ptrdiff_t>(dim), keys3.end());
  ASSERT_NE(keys3, keys2);
  sync_cache_to_view(cache, {keys3.data(), values2.data(), 8, dim});
  expect_adopted(keys3, values2);
}

// Backend adoption: the cache-backed ExactQuantizedBackend must reproduce
// exact_attention_quantized() on every step of a growing decode.
TEST(BackendAdoption, ExactQuantizedBackendBitIdentical) {
  Rng rng(0xe1);
  const std::size_t dim = 16;
  std::vector<float> keys, values;
  ExactQuantizedBackend backend;
  backend.begin_sequence();
  std::vector<float> out(dim);
  for (std::size_t t = 0; t < 48; ++t) {
    const auto k = random_row(rng, dim, 1.0);
    const auto v = random_row(rng, dim, 1.0);
    keys.insert(keys.end(), k.begin(), k.end());
    values.insert(values.end(), v.begin(), v.end());
    const KvHeadView view{keys.data(), values.data(), t + 1, dim};
    const auto q = random_row(rng, dim, 1.0);

    AttentionContext ctx;
    ctx.position = static_cast<int>(t);
    backend.attend(q, view, out, ctx);
    const auto reference = exact_attention_quantized(q, view);
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(out[d], reference.output[d]) << "step " << t << " dim " << d;
    }
  }
}

// And the cache-backed TokenPickerBackend must reproduce the from-scratch
// attend() on every step.
TEST(BackendAdoption, TokenPickerBackendBitIdentical) {
  Rng rng(0xe2);
  const std::size_t dim = 16;
  TokenPickerConfig config;
  config.estimator.threshold = 1e-3;
  std::vector<float> keys, values;
  TokenPickerBackend backend(config);
  TokenPickerAttention reference_op(config);
  backend.begin_sequence();
  std::vector<float> out(dim);
  for (std::size_t t = 0; t < 48; ++t) {
    const auto k = random_row(rng, dim, 1.0);
    const auto v = random_row(rng, dim, 1.0);
    keys.insert(keys.end(), k.begin(), k.end());
    values.insert(values.end(), v.begin(), v.end());
    const KvHeadView view{keys.data(), values.data(), t + 1, dim};
    const auto q = random_row(rng, dim, 1.0);

    AttentionContext ctx;
    ctx.position = static_cast<int>(t);
    backend.attend(q, view, out, ctx);
    const auto reference = reference_op.attend(q, view);
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(out[d], reference.output[d]) << "step " << t << " dim " << d;
    }
  }
}

// SpAtten adoption: shadow-replicate the pre-cache implementation (fresh
// quantize_kv + full-K dots over the active set) against the cache-backed
// backend, pruner state and all.
TEST(BackendAdoption, SpAttenBackendBitIdentical) {
  Rng rng(0xe3);
  const std::size_t dim = 16;
  const int n_layer = 2;
  SpAttenConfig config;
  config.final_keep_ratio = 0.5;
  config.value_prob_threshold = 0.01;

  const std::size_t max_tokens = 40;
  SpAttenBackend backend(config, n_layer, 1, max_tokens);
  SpAttenPruner shadow_pruner(config, n_layer);
  shadow_pruner.begin_sequence(max_tokens);
  backend.begin_sequence();

  std::vector<float> keys, values, out(dim);
  for (std::size_t t = 0; t < max_tokens; ++t) {
    const auto k = random_row(rng, dim, 1.0);
    const auto v = random_row(rng, dim, 1.0);
    keys.insert(keys.end(), k.begin(), k.end());
    values.insert(values.end(), v.begin(), v.end());
    const KvHeadView view{keys.data(), values.data(), t + 1, dim};

    for (int layer = 0; layer < n_layer; ++layer) {
      const auto q = random_row(rng, dim, 1.0);
      AttentionContext ctx;
      ctx.layer = layer;
      ctx.position = static_cast<int>(t);
      backend.attend(q, view, out, ctx);

      // The historical path, verbatim: re-quantize the whole head, dot the
      // active tokens' full keys, softmax, value-prune.
      const auto active = shadow_pruner.active_tokens(layer, view.len);
      const QuantizedKv qkv = quantize_kv(view, config.quant);
      fx::QuantParams qp = config.quant;
      qp.scale = fx::choose_scale(q, config.quant.total_bits);
      const fx::QuantizedVector qq = fx::quantize(q, qp);
      const double score_scale =
          static_cast<double>(qp.scale) * qkv.keys[0].params.scale /
          std::sqrt(static_cast<double>(dim));
      std::vector<double> scores(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) {
        scores[i] = static_cast<double>(fx::dot_i64(qq, qkv.keys[active[i]])) *
                    score_scale;
      }
      const double log_denom = log_sum_exp(scores.data(), scores.size());
      std::vector<double> probs(active.size());
      std::vector<float> expected(dim, 0.0f);
      const float v_scale = qkv.values[0].params.scale;
      for (std::size_t i = 0; i < active.size(); ++i) {
        probs[i] = std::exp(scores[i] - log_denom);
        if (probs[i] <= config.value_prob_threshold) continue;
        for (std::size_t d = 0; d < dim; ++d) {
          expected[d] += static_cast<float>(
              probs[i] *
              static_cast<double>(qkv.values[active[i]].values[d]) * v_scale);
        }
      }
      shadow_pruner.accumulate_importance(active, probs);

      for (std::size_t d = 0; d < dim; ++d) {
        EXPECT_EQ(out[d], expected[d])
            << "token " << t << " layer " << layer << " dim " << d;
      }
    }
  }
}

}  // namespace
}  // namespace topick
