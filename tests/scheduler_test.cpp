// QoS scheduling-policy suite: pure policy picks over hand-built candidate
// lists (no engine needed), queue re-entry positions, engine-level victim
// edge cases, priority protection, SLO attainment accounting, and the
// aging-based starvation guard.
#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/request.h"
#include "serve/scheduling_policy.h"
#include "serve/serve_engine.h"
#include "workload/arrivals.h"

namespace topick::serve {
namespace {

AdmissionCandidate queued(std::size_t request, wl::Priority priority,
                          std::size_t queue_pos,
                          long long slack = AdmissionCandidate::kNoSlack,
                          std::size_t wait_steps = 0) {
  AdmissionCandidate c;
  c.request = request;
  c.priority = priority;
  c.queue_pos = queue_pos;
  c.wait_steps = wait_steps;
  c.slack_steps = slack;
  return c;
}

VictimCandidate running(std::size_t request, wl::Priority priority,
                        std::size_t admit_order, std::size_t pages = 1,
                        std::uint64_t replay_bits = 100) {
  VictimCandidate c;
  c.request = request;
  c.priority = priority;
  c.admit_order = admit_order;
  c.pages_held = pages;
  c.replay_bits = replay_bits;
  return c;
}

// ---- FifoYoungestFirst: the baseline, priority-blind ------------------------

TEST(FifoYoungestFirst, AdmitsStrictlyByQueuePositionIgnoringPriority) {
  FifoYoungestFirst policy;
  const std::vector<AdmissionCandidate> q{
      queued(7, wl::Priority::best_effort, 0),
      queued(3, wl::Priority::interactive, 1, /*slack=*/1),
      queued(5, wl::Priority::batch, 2),
  };
  EXPECT_EQ(policy.pick_admission(q), 0u);
}

TEST(FifoYoungestFirst, EvictsYoungestEvenWhenHigherClass) {
  FifoYoungestFirst policy;
  const std::vector<VictimCandidate> cands{
      running(1, wl::Priority::best_effort, /*admit_order=*/0),
      running(2, wl::Priority::interactive, /*admit_order=*/5),
      running(3, wl::Priority::batch, /*admit_order=*/3),
  };
  std::size_t victim = 99;
  ASSERT_TRUE(policy.pick_victim(cands, wl::Priority::best_effort, &victim));
  EXPECT_EQ(cands[victim].request, 2u);  // youngest, priority ignored
}

// ---- PrioritySlack admission ------------------------------------------------

TEST(PrioritySlack, AdmitsByClassThenSlackThenQueueOrder) {
  PrioritySlack policy;
  {
    // Class dominates queue order.
    const std::vector<AdmissionCandidate> q{
        queued(1, wl::Priority::best_effort, 0),
        queued(2, wl::Priority::batch, 1),
        queued(3, wl::Priority::interactive, 2),
    };
    EXPECT_EQ(q[policy.pick_admission(q)].request, 3u);
  }
  {
    // Within a class, the tighter TTFT-SLO slack goes first; a request with
    // no SLO (kNoSlack) sorts after any deadline-carrying peer.
    const std::vector<AdmissionCandidate> q{
        queued(1, wl::Priority::interactive, 0),  // no SLO
        queued(2, wl::Priority::interactive, 1, /*slack=*/10),
        queued(3, wl::Priority::interactive, 2, /*slack=*/-4),  // blown: most urgent
    };
    EXPECT_EQ(q[policy.pick_admission(q)].request, 3u);
  }
  {
    // Class and slack equal: FIFO position decides (preempted re-entries sit
    // at position 0, so they resume before equal peers).
    const std::vector<AdmissionCandidate> q{
        queued(8, wl::Priority::batch, 1, /*slack=*/5),
        queued(9, wl::Priority::batch, 0, /*slack=*/5),
    };
    EXPECT_EQ(q[policy.pick_admission(q)].request, 9u);
  }
}

TEST(PrioritySlack, AgingPromotesStarvedRequestsPastFreshInteractive) {
  PrioritySlack policy(PrioritySlackParams{/*aging_steps=*/4});
  // best_effort (class 2) waited 12 steps -> promoted 3 classes -> -1, which
  // outranks a fresh interactive (class 0) regardless of its tight slack.
  const std::vector<AdmissionCandidate> q{
      queued(1, wl::Priority::interactive, 0, /*slack=*/1, /*wait=*/0),
      queued(2, wl::Priority::best_effort, 1, AdmissionCandidate::kNoSlack,
             /*wait=*/12),
  };
  EXPECT_EQ(q[policy.pick_admission(q)].request, 2u);
  // Not yet aged far enough (wait 8 -> class 0, ties on class, loses on
  // slack): the interactive request still goes first.
  const std::vector<AdmissionCandidate> q2{
      queued(1, wl::Priority::interactive, 0, /*slack=*/1, /*wait=*/0),
      queued(2, wl::Priority::best_effort, 1, AdmissionCandidate::kNoSlack,
             /*wait=*/8),
  };
  EXPECT_EQ(q2[policy.pick_admission(q2)].request, 1u);
}

// ---- PrioritySlack / CostAwareVictim victim selection -----------------------

TEST(PrioritySlack, EvictsLowestClassYoungestFirst) {
  PrioritySlack policy;
  const std::vector<VictimCandidate> cands{
      running(1, wl::Priority::interactive, 0),
      running(2, wl::Priority::best_effort, 1),
      running(3, wl::Priority::best_effort, 4),
      running(4, wl::Priority::batch, 5),
  };
  std::size_t victim = 99;
  ASSERT_TRUE(policy.pick_victim(cands, wl::Priority::interactive, &victim));
  EXPECT_EQ(cands[victim].request, 3u);  // lowest class, youngest within it
}

TEST(PrioritySlack, AllHigherPriorityMeansNoVictim) {
  PrioritySlack policy;
  const std::vector<VictimCandidate> cands{
      running(1, wl::Priority::interactive, 0),
      running(2, wl::Priority::interactive, 1),
      running(3, wl::Priority::batch, 2),
  };
  std::size_t victim = 99;
  // best_effort may not evict interactive or batch: refuse outright.
  EXPECT_FALSE(policy.pick_victim(cands, wl::Priority::best_effort, &victim));
  // A batch request may evict its own class (the batch peer), never the
  // interactive ones.
  ASSERT_TRUE(policy.pick_victim(cands, wl::Priority::batch, &victim));
  EXPECT_EQ(cands[victim].request, 3u);
}

TEST(CostAwareVictim, PicksCheapestReplayPerPageWithinLowestClass) {
  CostAwareVictim policy;
  const std::vector<VictimCandidate> cands{
      // interactive: protected from a batch-needy preemption entirely.
      running(1, wl::Priority::interactive, 0, /*pages=*/1, /*replay=*/1),
      // batch class: 6000/2 = 3000 bits per freed page...
      running(2, wl::Priority::batch, 1, /*pages=*/2, /*replay=*/6000),
      // ...vs 8000/8 = 1000 bits per freed page: cheaper per refund, wins
      // even though its absolute replay is larger.
      running(3, wl::Priority::batch, 2, /*pages=*/8, /*replay=*/8000),
  };
  std::size_t victim = 99;
  ASSERT_TRUE(policy.pick_victim(cands, wl::Priority::batch, &victim));
  EXPECT_EQ(cands[victim].request, 3u);

  // Exact cost tie: fall back to youngest.
  const std::vector<VictimCandidate> tie{
      running(5, wl::Priority::batch, 1, /*pages=*/2, /*replay=*/4000),
      running(6, wl::Priority::batch, 3, /*pages=*/4, /*replay=*/8000),
  };
  ASSERT_TRUE(policy.pick_victim(tie, wl::Priority::batch, &victim));
  EXPECT_EQ(tie[victim].request, 6u);

  // Class still dominates cost: a dirt-cheap interactive replay is never
  // chosen over an expensive best_effort one.
  const std::vector<VictimCandidate> classy{
      running(7, wl::Priority::interactive, 0, /*pages=*/50, /*replay=*/1),
      running(8, wl::Priority::best_effort, 1, /*pages=*/1, /*replay=*/1u << 20),
  };
  ASSERT_TRUE(policy.pick_victim(classy, wl::Priority::interactive, &victim));
  EXPECT_EQ(classy[victim].request, 8u);
}

TEST(CostAwareVictim, PrefersVictimsWithMoreDeadlineSlack) {
  CostAwareVictim policy;
  const auto with_slack = [](VictimCandidate c, long long slack) {
    c.slack_steps = slack;
    return c;
  };
  std::size_t victim = 99;

  // Slack dominates cost within a class: the near-deadline request (slack 2)
  // keeps running even though its replay is dirt cheap — preempting it would
  // turn its remaining work into a guaranteed deadline miss.
  const std::vector<VictimCandidate> slacky{
      with_slack(running(1, wl::Priority::batch, 0, /*pages=*/1, /*replay=*/1),
                 /*slack=*/2),
      with_slack(
          running(2, wl::Priority::batch, 1, /*pages=*/1, /*replay=*/1u << 20),
          /*slack=*/500),
  };
  ASSERT_TRUE(policy.pick_victim(slacky, wl::Priority::batch, &victim));
  EXPECT_EQ(slacky[victim].request, 2u);

  // A candidate with no deadline at all (kNoSlack) is sacrificed ahead of any
  // deadline-bearing peer, however loose that peer's deadline is.
  const std::vector<VictimCandidate> mixed{
      with_slack(running(3, wl::Priority::batch, 0), /*slack=*/100000),
      running(4, wl::Priority::batch, 1),  // no deadline
  };
  ASSERT_TRUE(policy.pick_victim(mixed, wl::Priority::batch, &victim));
  EXPECT_EQ(mixed[victim].request, 4u);

  // Equal slack falls through to the replay-bits-per-page cost order — the
  // deadline tiebreak never scrambles the deadline-free ordering (every
  // candidate at kNoSlack is exactly the pre-deadline comparator).
  const std::vector<VictimCandidate> equal{
      with_slack(running(5, wl::Priority::batch, 0, /*pages=*/2, /*replay=*/6000),
                 /*slack=*/8),
      with_slack(running(6, wl::Priority::batch, 1, /*pages=*/8, /*replay=*/8000),
                 /*slack=*/8),
  };
  ASSERT_TRUE(policy.pick_victim(equal, wl::Priority::batch, &victim));
  EXPECT_EQ(equal[victim].request, 6u);  // 1000 bits/page < 3000 bits/page

  // Class still dominates slack: a blown-deadline best_effort request is
  // preempted before a comfortable batch one.
  const std::vector<VictimCandidate> classy{
      with_slack(running(7, wl::Priority::batch, 0), /*slack=*/1000),
      with_slack(running(8, wl::Priority::best_effort, 1), /*slack=*/-5),
  };
  ASSERT_TRUE(policy.pick_victim(classy, wl::Priority::batch, &victim));
  EXPECT_EQ(classy[victim].request, 8u);
}

// ---- queue re-entry position ------------------------------------------------

TEST(RequestQueue, PreemptedReentersAtTheFront) {
  RequestQueue queue;
  queue.push_arrival(1);
  queue.push_arrival(2);
  queue.push_preempted(3);
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.at(0), 3u);  // preempted ahead of earlier arrivals
  EXPECT_EQ(queue.at(1), 1u);
  EXPECT_EQ(queue.at(2), 2u);
  queue.erase_at(1);  // policy admitted from the middle
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.at(0), 3u);
  EXPECT_EQ(queue.at(1), 2u);
}

TEST(Scheduling, ReentryOrderDependsOnPolicy) {
  // Queue state after a preemption: the preempted batch request sits at
  // position 0, a later interactive arrival behind it. FIFO resumes the
  // preempted request first; PrioritySlack lets the interactive one jump it.
  const std::vector<AdmissionCandidate> q{
      queued(10, wl::Priority::batch, 0),
      queued(11, wl::Priority::interactive, 1, /*slack=*/8),
  };
  FifoYoungestFirst fifo;
  PrioritySlack slack;
  EXPECT_EQ(q[fifo.pick_admission(q)].request, 10u);
  EXPECT_EQ(q[slack.pick_admission(q)].request, 11u);
}

// ---- engine-level edge cases ------------------------------------------------

wl::ArrivalEvent event(std::uint64_t id, std::size_t step,
                       std::size_t prompt_len, std::size_t decode_len,
                       wl::Priority priority = wl::Priority::interactive,
                       std::size_t slo_ttft = 0, std::size_t slo_latency = 0) {
  wl::ArrivalEvent e;
  e.request_id = id;
  e.step = step;
  e.prompt_len = prompt_len;
  e.decode_len = decode_len;
  e.stream_seed = 1000 + id;
  e.priority = priority;
  e.slo_ttft_steps = slo_ttft;
  e.slo_latency_steps = slo_latency;
  return e;
}

ServeConfig tiny_config() {
  ServeConfig config;
  config.n_layer = 1;
  config.n_head = 1;
  config.head_dim = 8;
  config.page_tokens = 4;
  config.backend = BackendKind::exact_quantized;
  config.reclaim = false;  // page demand stays exactly predictable
  config.capture_outputs = false;
  config.simulate_dram = false;
  return config;
}

TEST(ServeEngineScheduling, SingleRunningRequestPoolExhaustionThrows) {
  // The needy request is never its own victim: once it is the only running
  // request and the pool is exhausted, there is no candidate at all and the
  // engine reports the config error instead of self-deadlocking.
  ServeConfig config = tiny_config();
  config.pool_pages = 2;  // fits the prompt + a couple of decode tokens only
  ServeEngine engine(config);
  engine.submit(event(0, 0, /*prompt=*/4, /*decode=*/20));
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ServeEngineScheduling, FifoPressureEvictsTheOtherRequestNotTheNeedy) {
  // Two identical requests; the first (processed first each step) hits the
  // page boundary first and triggers pressure — the victim must be the
  // *other* (youngest) request, and both still finish.
  ServeConfig config = tiny_config();
  config.pool_pages = 6;
  ServeEngine engine(config);
  engine.submit(event(0, 0, /*prompt=*/8, /*decode=*/8));
  engine.submit(event(1, 0, /*prompt=*/8, /*decode=*/8));
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 2u);
  EXPECT_GT(engine.metrics().preemptions, 0u);
  EXPECT_EQ(engine.requests()[0].preemptions, 0);  // the needy was excluded
  EXPECT_GE(engine.requests()[1].preemptions, 1);
}

TEST(ServeEngineScheduling, PrioritySlackShieldsHigherClassesUnderPressure) {
  // Interactive + best_effort contend for a pool that can't hold everyone.
  // Whichever side trips the pressure, only the best_effort request may be
  // preempted (victim pick or self-preemption) — interactive never pays.
  ServeConfig config = tiny_config();
  config.policy = PolicyKind::priority_slack;
  config.pool_pages = 12;
  ServeEngine engine(config);
  engine.submit(event(0, 0, 8, 16, wl::Priority::best_effort));
  engine.submit(event(1, 0, 8, 16, wl::Priority::interactive));
  engine.submit(event(2, 0, 8, 16, wl::Priority::interactive));
  engine.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.requests_retired, 3u);
  EXPECT_GT(m.preemptions, 0u);
  EXPECT_EQ(m.for_class(wl::Priority::interactive).preemptions, 0u);
  EXPECT_EQ(m.for_class(wl::Priority::best_effort).preemptions, m.preemptions);
}

TEST(ServeEngineScheduling, PriorityAdmissionOrdersClassesAndSlack) {
  // One slot: admission order is directly visible in admit_step. Submission
  // order is deliberately inverted (best_effort first) and the two
  // interactive requests carry different TTFT SLOs.
  ServeConfig config = tiny_config();
  config.policy = PolicyKind::priority_slack;
  config.max_batch = 1;
  config.pool_pages = 64;
  ServeEngine engine(config);
  engine.submit(event(0, 0, 4, 4, wl::Priority::best_effort));
  engine.submit(event(1, 0, 4, 4, wl::Priority::batch));
  engine.submit(event(2, 0, 4, 4, wl::Priority::interactive, /*slo_ttft=*/64));
  engine.submit(event(3, 0, 4, 4, wl::Priority::interactive, /*slo_ttft=*/8));
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 4u);
  const auto& reqs = engine.requests();
  EXPECT_LT(reqs[3].admit_step, reqs[2].admit_step);  // tighter SLO first
  EXPECT_LT(reqs[2].admit_step, reqs[1].admit_step);  // interactive < batch
  EXPECT_LT(reqs[1].admit_step, reqs[0].admit_step);  // batch < best_effort
}

TEST(ServeEngineScheduling, StarvationGuardAdmitsBestEffortUnderSustainedLoad) {
  // Sustained interactive arrivals keep the single slot busy and the queue
  // nonempty for the whole run. Under strict priority the best_effort
  // request waits for the entire interactive backlog; with aging it is
  // promoted past fresh interactive arrivals and admits mid-load.
  struct RunSummary {
    std::size_t retired = 0;
    std::size_t scavenger_admit = 0;
    std::size_t last_interactive_admit = 0;
  };
  const auto run_with_aging = [](std::size_t aging_steps) {
    ServeConfig config;
    config.n_layer = 1;
    config.n_head = 1;
    config.head_dim = 8;
    config.page_tokens = 4;
    config.backend = BackendKind::exact_quantized;
    config.reclaim = false;
    config.capture_outputs = false;
    config.simulate_dram = false;
    config.max_batch = 1;
    config.pool_pages = 64;
    config.policy = PolicyKind::priority_slack;
    config.policy_params.aging_steps = aging_steps;
    ServeEngine engine(config);
    // Request 0: the best_effort scavenger, in the queue from step 0.
    engine.submit(event(0, 0, 4, 4, wl::Priority::best_effort));
    // Sustained interactive load: one arrival per step, each ~5 steps of
    // service — the backlog only grows while arrivals continue.
    for (std::size_t i = 0; i < 20; ++i) {
      engine.submit(event(1 + i, i, 4, 4, wl::Priority::interactive,
                          /*slo_ttft=*/64));
    }
    engine.run();
    RunSummary summary;
    summary.retired = engine.metrics().requests_retired;
    summary.scavenger_admit = engine.requests()[0].admit_step;
    for (std::size_t i = 1; i < engine.requests().size(); ++i) {
      summary.last_interactive_admit = std::max(
          summary.last_interactive_admit, engine.requests()[i].admit_step);
    }
    return summary;
  };

  const RunSummary strict = run_with_aging(/*aging_steps=*/0);
  const RunSummary aged = run_with_aging(/*aging_steps=*/3);
  ASSERT_EQ(strict.retired, 21u);
  ASSERT_EQ(aged.retired, 21u);
  // Strict priority starves the scavenger until the interactive backlog is
  // done; aging admits it while interactive requests are still queued.
  EXPECT_LT(aged.scavenger_admit, strict.scavenger_admit);
  EXPECT_LT(aged.scavenger_admit, aged.last_interactive_admit);
}

TEST(ServeEngineScheduling, SloAttainmentAccountsPerClass) {
  // prompt 32 with 16-token chunks = 2 prefill steps, first token at step 2:
  // a 1-step TTFT SLO misses, a 50-step one holds. Latency SLOs likewise.
  ServeConfig config = tiny_config();
  config.prefill_chunk_tokens = 16;
  config.pool_pages = 128;
  ServeEngine engine(config);
  engine.submit(event(0, 0, 32, 4, wl::Priority::interactive, /*slo_ttft=*/1,
                      /*slo_latency=*/50));
  engine.submit(event(1, 0, 32, 4, wl::Priority::interactive, /*slo_ttft=*/50,
                      /*slo_latency=*/1));
  engine.submit(event(2, 0, 32, 4, wl::Priority::batch, /*slo_ttft=*/50,
                      /*slo_latency=*/50));
  engine.submit(event(3, 0, 32, 4, wl::Priority::best_effort));  // no SLO
  engine.run();

  const auto& m = engine.metrics();
  ASSERT_EQ(m.requests_retired, 4u);
  const auto& interactive = m.for_class(wl::Priority::interactive);
  EXPECT_EQ(interactive.submitted, 2u);
  EXPECT_EQ(interactive.retired, 2u);
  EXPECT_EQ(interactive.slo_ttft_tracked, 2u);
  EXPECT_EQ(interactive.slo_ttft_met, 1u);
  EXPECT_EQ(interactive.slo_latency_tracked, 2u);
  EXPECT_EQ(interactive.slo_latency_met, 1u);
  EXPECT_DOUBLE_EQ(interactive.slo_ttft_attainment(), 0.5);
  EXPECT_DOUBLE_EQ(interactive.slo_latency_attainment(), 0.5);
  const auto& batch = m.for_class(wl::Priority::batch);
  EXPECT_DOUBLE_EQ(batch.slo_ttft_attainment(), 1.0);
  EXPECT_DOUBLE_EQ(batch.slo_latency_attainment(), 1.0);
  const auto& scavenger = m.for_class(wl::Priority::best_effort);
  EXPECT_EQ(scavenger.slo_ttft_tracked, 0u);
  EXPECT_DOUBLE_EQ(scavenger.slo_ttft_attainment(), 1.0);  // vacuous
  EXPECT_EQ(interactive.tokens_generated + batch.tokens_generated +
                scavenger.tokens_generated,
            m.tokens_generated);
}

// ---- the priority-mix trace generator ---------------------------------------

TEST(PriorityMixTrace, DrawsAllClassesWithPerClassShapesAndSlos) {
  wl::PriorityMixParams params;
  params.arrivals.rate = 1.2;
  Rng rng(321);
  const auto trace = wl::make_priority_mix_trace(params, 200, rng);
  ASSERT_EQ(trace.size(), 200u);
  std::array<std::size_t, wl::kPriorityCount> counts{};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& e = trace[i];
    EXPECT_EQ(e.request_id, i);
    if (i > 0) {
      EXPECT_GE(e.step, trace[i - 1].step);
    }
    const auto cls = static_cast<std::size_t>(e.priority);
    ASSERT_LT(cls, wl::kPriorityCount);
    ++counts[cls];
    const auto& mix = params.mix[cls];
    EXPECT_GE(e.prompt_len, mix.prompt_min);
    EXPECT_LE(e.prompt_len, mix.prompt_max);
    EXPECT_GE(e.decode_len, mix.decode_min);
    EXPECT_LE(e.decode_len, mix.decode_max);
    EXPECT_EQ(e.slo_ttft_steps, mix.slo_ttft_steps);
    EXPECT_EQ(e.slo_latency_steps, mix.slo_latency_steps);
  }
  // All three classes actually occur, roughly per the 0.5/0.3/0.2 weights.
  for (const auto count : counts) EXPECT_GT(count, 10u);
  EXPECT_GT(counts[0], counts[2]);
}

TEST(PriorityMixTrace, DeterministicFromSeed) {
  wl::PriorityMixParams params;
  Rng a(7), b(7);
  const auto ta = wl::make_priority_mix_trace(params, 64, a);
  const auto tb = wl::make_priority_mix_trace(params, 64, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].step, tb[i].step);
    EXPECT_EQ(ta[i].priority, tb[i].priority);
    EXPECT_EQ(ta[i].prompt_len, tb[i].prompt_len);
    EXPECT_EQ(ta[i].decode_len, tb[i].decode_len);
    EXPECT_EQ(ta[i].stream_seed, tb[i].stream_seed);
  }
}

}  // namespace
}  // namespace topick::serve
