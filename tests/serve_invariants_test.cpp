// Serve-level invariant and determinism suite.
//
// * PagedKvPool property test: ~10k randomized alloc/append/mark-dead/sweep/
//   release ops over concurrent sequences against a shadow model, asserting
//   the page-accounting invariants (free + resident == pool size, exclusive
//   page ownership, reclaim never frees a live token's page).
// * Determinism: two ServeEngine runs from an identical config + seed yield
//   bit-identical FleetMetrics and per-request token streams, for every
//   scheduling policy — the guard against iteration-order nondeterminism in
//   the scheduler refactor.
#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/paged_kv_pool.h"
#include "serve/paged_sequence.h"
#include "serve/scheduling_policy.h"
#include "serve/serve_engine.h"
#include "workload/arrivals.h"

namespace topick::serve {
namespace {

// ---- PagedKvPool / PagedSequence property test ------------------------------

constexpr std::size_t kHeadDim = 2;
constexpr std::size_t kPageTokens = 4;

// Shadow of one sequence: every appended token's encoded key plus liveness,
// and which logical pages an earlier sweep already returned to the pool.
struct ShadowSeq {
  std::vector<bool> live;
  std::vector<bool> page_freed;  // by logical page index
  std::size_t live_count = 0;
};

float encode(std::size_t seq, std::size_t token) {
  return static_cast<float>(seq * 100000 + token);
}

// Full pages whose live count is zero and that are still held — exactly what
// the next sweep() must free (the partial tail page never counts, even when
// fully dead; already-swept pages don't free twice).
std::vector<std::size_t> sweepable_pages(const ShadowSeq& shadow) {
  const std::size_t full_pages = shadow.live.size() / kPageTokens;
  std::vector<std::size_t> dead_pages;
  for (std::size_t p = 0; p < full_pages; ++p) {
    if (p < shadow.page_freed.size() && shadow.page_freed[p]) continue;
    bool any_live = false;
    for (std::size_t t = p * kPageTokens; t < (p + 1) * kPageTokens; ++t) {
      any_live |= shadow.live[t];
    }
    if (!any_live) dead_pages.push_back(p);
  }
  return dead_pages;
}

TEST(PagedKvPoolProperty, RandomizedOpsPreserveAccountingAndOwnership) {
  constexpr std::size_t kPoolPages = 24;  // small: exhaustion must happen
  constexpr std::size_t kSeqs = 6;
  constexpr int kOps = 10000;

  PagedKvPool pool({kPoolPages, kPageTokens, kHeadDim});
  std::vector<PagedSequence> seqs;
  seqs.reserve(kSeqs);
  for (std::size_t s = 0; s < kSeqs; ++s) seqs.emplace_back(&pool);
  std::vector<ShadowSeq> shadow(kSeqs);
  // Swept full pages leave the sequence but their token ids stay dead
  // forever; shadow.live keeps tracking them as dead, so views must match.

  Rng rng(0xfeedface);
  std::uint64_t appends_refused = 0;

  for (int op = 0; op < kOps; ++op) {
    const std::size_t s = rng.uniform_index(kSeqs);
    auto& seq = seqs[s];
    auto& sh = shadow[s];
    const double dice = rng.uniform();

    if (dice < 0.62) {
      // Append one token with an identifying key.
      const std::size_t token = sh.live.size();
      const std::vector<float> k{encode(s, token), 0.5f};
      const std::vector<float> v{-encode(s, token), 1.5f};
      if (seq.append(k, v)) {
        sh.live.push_back(true);
        ++sh.live_count;
      } else {
        // Refusal is only legal on genuine exhaustion, and changes nothing.
        EXPECT_EQ(pool.pages_free(), 0u);
        ++appends_refused;
      }
    } else if (dice < 0.82) {
      // Kill a random live token.
      if (sh.live_count > 0) {
        std::size_t pick = rng.uniform_index(sh.live_count);
        for (std::size_t t = 0; t < sh.live.size(); ++t) {
          if (!sh.live[t]) continue;
          if (pick-- == 0) {
            seq.mark_dead(t);
            sh.live[t] = false;
            --sh.live_count;
            break;
          }
        }
      }
    } else if (dice < 0.95) {
      // Sweep: must free exactly the still-held fully-dead full pages, never
      // a page holding a live token (verified below by the view re-read).
      const auto dead_pages = sweepable_pages(sh);
      const std::size_t freed = seq.sweep();
      EXPECT_EQ(freed, dead_pages.size()) << "op " << op << " seq " << s;
      for (const std::size_t p : dead_pages) {
        if (p >= sh.page_freed.size()) sh.page_freed.resize(p + 1, false);
        sh.page_freed[p] = true;
      }
    } else {
      // Retire/preempt: everything returns to the pool.
      seq.release_all();
      sh.live.clear();
      sh.page_freed.clear();
      sh.live_count = 0;
      EXPECT_EQ(seq.appended_tokens(), 0u);
      EXPECT_EQ(seq.pages_held(), 0u);
    }

    // Invariant 1: free + resident page accounting always sums to the pool.
    std::size_t held_total = 0;
    for (const auto& q : seqs) held_total += q.pages_held();
    EXPECT_EQ(pool.pages_free() + held_total, kPoolPages) << "op " << op;
    EXPECT_EQ(pool.pages_in_use(), held_total) << "op " << op;

    // Invariants 2+3, checked through the views: every sequence still reads
    // exactly its shadow-live tokens with the values it appended (a page
    // owned by two sequences, or a reclaimed live page, would corrupt some
    // sequence's ids or values), and no physical page backs two sequences.
    const bool full_audit = op % 250 == 0 || op == kOps - 1;
    if (full_audit) {
      std::set<const float*> owned_pages;
      for (std::size_t q = 0; q < kSeqs; ++q) {
        std::vector<std::size_t> ids;
        const auto view = seqs[q].view(&ids);
        const auto& shq = shadow[q];
        ASSERT_EQ(view.len(), shq.live_count) << "op " << op << " seq " << q;
        EXPECT_EQ(seqs[q].live_tokens(), shq.live_count);
        std::size_t vi = 0;
        for (std::size_t t = 0; t < shq.live.size(); ++t) {
          if (!shq.live[t]) {
            EXPECT_FALSE(seqs[q].live(t));
            continue;
          }
          ASSERT_LT(vi, ids.size());
          EXPECT_EQ(ids[vi], t);
          EXPECT_FLOAT_EQ(view.key(vi)[0], encode(q, t));
          EXPECT_FLOAT_EQ(view.value(vi)[0], -encode(q, t));
          ++vi;
        }
        for (const float* page : view.key_pages) {
          if (page == nullptr) continue;
          const bool inserted = owned_pages.insert(page).second;
          EXPECT_TRUE(inserted)
              << "page owned by two sequences at op " << op;
        }
      }
    }
  }
  // The scenario actually exercised exhaustion-and-recovery.
  EXPECT_GT(appends_refused, 0u);
  EXPECT_GT(pool.reuses(), 0u);
}

// ---- determinism ------------------------------------------------------------

void expect_class_metrics_identical(const ClassMetrics& a,
                                    const ClassMetrics& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.tokens_generated, b.tokens_generated);
  EXPECT_EQ(a.ttft_cycle_samples, b.ttft_cycle_samples);
  EXPECT_EQ(a.latency_cycle_samples, b.latency_cycle_samples);
  EXPECT_EQ(a.queue_wait_step_samples, b.queue_wait_step_samples);
  EXPECT_EQ(a.slo_ttft_tracked, b.slo_ttft_tracked);
  EXPECT_EQ(a.slo_ttft_met, b.slo_ttft_met);
  EXPECT_EQ(a.slo_latency_tracked, b.slo_latency_tracked);
  EXPECT_EQ(a.slo_latency_met, b.slo_latency_met);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.degraded_tokens, b.degraded_tokens);
}

void expect_metrics_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_retired, b.requests_retired);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.tokens_generated, b.tokens_generated);
  EXPECT_EQ(a.engine_steps, b.engine_steps);
  EXPECT_EQ(a.stats.k_bits_fetched, b.stats.k_bits_fetched);
  EXPECT_EQ(a.stats.v_bits_fetched, b.stats.v_bits_fetched);
  EXPECT_EQ(a.stats.k_bits_baseline, b.stats.k_bits_baseline);
  EXPECT_EQ(a.stats.v_bits_baseline, b.stats.v_bits_baseline);
  EXPECT_EQ(a.stats.tokens_total, b.stats.tokens_total);
  EXPECT_EQ(a.stats.tokens_kept, b.stats.tokens_kept);
  EXPECT_EQ(a.prefill_tokens, b.prefill_tokens);
  EXPECT_EQ(a.prefill_bits, b.prefill_bits);
  EXPECT_EQ(a.decode_write_bits, b.decode_write_bits);
  EXPECT_EQ(a.step_cycle_samples, b.step_cycle_samples);  // bitwise doubles
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.ttft_cycle_samples, b.ttft_cycle_samples);
  EXPECT_EQ(a.request_latency_cycle_samples, b.request_latency_cycle_samples);
  EXPECT_EQ(a.queue_wait_step_samples, b.queue_wait_step_samples);
  EXPECT_EQ(a.pool_peak_pages, b.pool_peak_pages);
  EXPECT_EQ(a.pool_reuses, b.pool_reuses);
  EXPECT_EQ(a.pages_reclaimed, b.pages_reclaimed);
  EXPECT_EQ(a.requests_failed, b.requests_failed);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.degraded_tokens, b.degraded_tokens);
  EXPECT_EQ(a.degradation_level_changes, b.degradation_level_changes);
  EXPECT_EQ(a.degradation_level, b.degradation_level);
  EXPECT_DOUBLE_EQ(a.avg_fragmentation, b.avg_fragmentation);
  for (std::size_t c = 0; c < wl::kPriorityCount; ++c) {
    expect_class_metrics_identical(a.per_class[c], b.per_class[c]);
  }
}

void expect_runs_identical(const ServeEngine& a, const ServeEngine& b) {
  expect_metrics_identical(a.metrics(), b.metrics());
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (std::size_t r = 0; r < a.requests().size(); ++r) {
    const Request& ra = a.requests()[r];
    const Request& rb = b.requests()[r];
    EXPECT_EQ(ra.generated, rb.generated);
    EXPECT_EQ(ra.admit_step, rb.admit_step);
    EXPECT_EQ(ra.finish_step, rb.finish_step);
    EXPECT_EQ(ra.first_token_step, rb.first_token_step);
    EXPECT_EQ(ra.preemptions, rb.preemptions);
    EXPECT_EQ(ra.dram_cycles, rb.dram_cycles);
    EXPECT_EQ(ra.prefill_bits, rb.prefill_bits);
    // Per-request token streams: every step's attention output and token
    // sets must be bit-identical, not merely close.
    ASSERT_EQ(ra.outputs.size(), rb.outputs.size()) << "request " << r;
    for (std::size_t s = 0; s < ra.outputs.size(); ++s) {
      const StepOutput& sa = ra.outputs[s];
      const StepOutput& sb = rb.outputs[s];
      EXPECT_EQ(sa.position, sb.position);
      ASSERT_EQ(sa.out.size(), sb.out.size());
      for (std::size_t i = 0; i < sa.out.size(); ++i) {
        EXPECT_EQ(sa.out[i], sb.out[i]) << "request " << r << " step " << s;
        EXPECT_EQ(sa.view_tokens[i], sb.view_tokens[i]);
        EXPECT_EQ(sa.kept_tokens[i], sb.kept_tokens[i]);
      }
    }
  }
}

ServeConfig determinism_config(PolicyKind policy) {
  ServeConfig config;
  config.n_layer = 1;
  config.n_head = 2;
  config.head_dim = 16;
  config.max_batch = 6;
  config.pool_pages = 56;  // tight enough that preemption/self-preemption run
  config.page_tokens = 4;
  config.backend = BackendKind::token_picker;
  config.picker.estimator.threshold = 1e-3;
  config.persistence_window = 2;
  config.reclaim = true;
  config.capture_outputs = true;
  config.simulate_dram = true;
  config.prefill_chunk_tokens = 8;
  config.policy = policy;
  config.policy_params.aging_steps = 16;
  return config;
}

TEST(ServeEngineDeterminism, IdenticalConfigAndSeedGiveBitIdenticalRuns) {
  wl::PriorityMixParams mix;
  mix.arrivals.rate = 0.9;
  // Short, mixed-class requests; lengths small so three policies x two runs
  // stay fast.
  for (auto& m : mix.mix) {
    m.prompt_min = 4;
    m.prompt_max = 24;
    m.decode_min = 8;
    m.decode_max = 24;
  }

  for (const PolicyKind policy :
       {PolicyKind::fifo_youngest_first, PolicyKind::priority_slack,
        PolicyKind::cost_aware_victim}) {
    SCOPED_TRACE(policy_kind_name(policy));
    Rng trace_rng(2026);
    const auto trace = wl::make_priority_mix_trace(mix, 18, trace_rng);

    const ServeConfig config = determinism_config(policy);
    ServeEngine a(config);
    a.submit_trace(trace);
    a.run();
    ServeEngine b(config);
    b.submit_trace(trace);
    b.run();

    // The scenario must actually exercise the scheduler's contended paths
    // for the determinism claim to mean anything.
    EXPECT_GT(a.metrics().preemptions, 0u);

    expect_runs_identical(a, b);
  }
}

// Threads never change bits: the engine's parallel attention phase fans
// per-(slot, layer, head) work across workers, but outputs, FleetMetrics,
// per-step traffic, and token sets must be bit-identical to the sequential
// engine for every thread count and every scheduling policy — the PR 3
// determinism suite re-run at threads ∈ {1, 2, 8} (acceptance criterion).
TEST(ServeEngineDeterminism, ThreadFanOutIsBitIdenticalToSequential) {
  wl::PriorityMixParams mix;
  mix.arrivals.rate = 0.9;
  for (auto& m : mix.mix) {
    m.prompt_min = 4;
    m.prompt_max = 24;
    m.decode_min = 8;
    m.decode_max = 24;
  }

  for (const PolicyKind policy :
       {PolicyKind::fifo_youngest_first, PolicyKind::priority_slack,
        PolicyKind::cost_aware_victim}) {
    SCOPED_TRACE(policy_kind_name(policy));
    Rng trace_rng(2026);
    const auto trace = wl::make_priority_mix_trace(mix, 18, trace_rng);

    const ServeConfig reference_config = determinism_config(policy);
    ASSERT_EQ(reference_config.threads, 1u);
    ServeEngine reference(reference_config);
    reference.submit_trace(trace);
    reference.run();
    EXPECT_GT(reference.metrics().preemptions, 0u);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(threads);
      ServeConfig config = determinism_config(policy);
      config.threads = threads;
      ServeEngine fanned(config);
      fanned.submit_trace(trace);
      fanned.run();
      expect_runs_identical(reference, fanned);
    }
  }
}

// The SpAtten backend parallelizes at slot grain (its pruner cascades across
// a slot's instances) — the thread-identity contract must hold there too.
TEST(ServeEngineDeterminism, SpAttenThreadFanOutIsBitIdentical) {
  wl::PriorityMixParams mix;
  mix.arrivals.rate = 0.9;
  for (auto& m : mix.mix) {
    m.prompt_min = 4;
    m.prompt_max = 24;
    m.decode_min = 8;
    m.decode_max = 24;
  }
  Rng trace_rng(2027);
  const auto trace = wl::make_priority_mix_trace(mix, 14, trace_rng);

  ServeConfig base = determinism_config(PolicyKind::fifo_youngest_first);
  base.backend = BackendKind::spatten;
  base.reclaim = false;  // SpAtten never reclaims pool storage
  ServeEngine reference(base);
  reference.submit_trace(trace);
  reference.run();

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    ServeConfig config = base;
    config.threads = threads;
    ServeEngine fanned(config);
    fanned.submit_trace(trace);
    fanned.run();
    expect_runs_identical(reference, fanned);
  }
}

// Pipelined-executor acceptance: overlapped in-step reduction plus the
// cross-step replay lane must leave outputs, FleetMetrics (cycle-domain
// latency samples included), and token sets bit-identical to the sequential
// fork-join engine — for every policy, at threads {1, 2, 8}, under the same
// contended scenario the barrier suite uses.
TEST(ServeEngineDeterminism, PipelinedExecutorIsBitIdenticalToSequential) {
  wl::PriorityMixParams mix;
  mix.arrivals.rate = 0.9;
  for (auto& m : mix.mix) {
    m.prompt_min = 4;
    m.prompt_max = 24;
    m.decode_min = 8;
    m.decode_max = 24;
  }

  for (const PolicyKind policy :
       {PolicyKind::fifo_youngest_first, PolicyKind::priority_slack,
        PolicyKind::cost_aware_victim}) {
    SCOPED_TRACE(policy_kind_name(policy));
    Rng trace_rng(2026);
    const auto trace = wl::make_priority_mix_trace(mix, 18, trace_rng);

    const ServeConfig reference_config = determinism_config(policy);
    ServeEngine reference(reference_config);
    reference.submit_trace(trace);
    reference.run();
    EXPECT_GT(reference.metrics().preemptions, 0u);

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(threads);
      ServeConfig config = determinism_config(policy);
      config.threads = threads;
      config.pipeline = true;
      ServeEngine pipelined(config);
      pipelined.submit_trace(trace);
      pipelined.run();
      expect_runs_identical(reference, pipelined);
    }
  }
}

// Sharded replay reconciliation at the engine level: with channel queues deep
// enough that no queue-full stall occurs, the per-channel replay is
// cycle-exact vs. the serial tick loop — so the whole run, latency samples
// and per-request dram_cycles included, bit-matches. Also crossed with the
// pipelined executor (the bench's fast configuration).
TEST(ServeEngineDeterminism, ShardedReplayMatchesSerialWithoutInterference) {
  wl::PriorityMixParams mix;
  mix.arrivals.rate = 0.9;
  for (auto& m : mix.mix) {
    m.prompt_min = 4;
    m.prompt_max = 24;
    m.decode_min = 8;
    m.decode_max = 24;
  }
  Rng trace_rng(2026);
  const auto trace = wl::make_priority_mix_trace(mix, 18, trace_rng);

  ServeConfig base = determinism_config(PolicyKind::cost_aware_victim);
  // No-interference condition: at most max_batch (6) transfers stream per
  // cycle across 8 channels, so a 64-deep queue never fills and the sharded
  // model's cycle contract applies exactly.
  base.dram.queue_depth = 64;
  ServeEngine serial(base);
  serial.submit_trace(trace);
  serial.run();

  ServeConfig sharded_config = base;
  sharded_config.shard_replay = true;
  ServeEngine sharded(sharded_config);
  sharded.submit_trace(trace);
  sharded.run();
  expect_runs_identical(serial, sharded);

  ServeConfig piped_config = sharded_config;
  piped_config.pipeline = true;
  piped_config.threads = 8;
  ServeEngine piped(piped_config);
  piped.submit_trace(trace);
  piped.run();
  expect_runs_identical(serial, piped);
}

}  // namespace
}  // namespace topick::serve
