#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exact_attention.h"
#include "core/token_picker.h"
#include "serve/batcher.h"
#include "serve/paged_kv_pool.h"
#include "serve/paged_sequence.h"
#include "serve/serve_engine.h"
#include "workload/arrivals.h"
#include "workload/decode_stream.h"

namespace topick::serve {
namespace {

// ---- PagedKvPool ------------------------------------------------------------

TEST(PagedKvPool, AllocFreeAccounting) {
  PagedKvPool pool({4, 2, 3});
  EXPECT_EQ(pool.pages_free(), 4u);
  const auto a = pool.alloc_page();
  const auto b = pool.alloc_page();
  ASSERT_NE(a, PagedKvPool::kInvalidPage);
  ASSERT_NE(b, PagedKvPool::kInvalidPage);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.pages_in_use(), 2u);
  EXPECT_EQ(pool.peak_pages_in_use(), 2u);
  pool.free_page(a);
  EXPECT_EQ(pool.pages_in_use(), 1u);
  EXPECT_EQ(pool.peak_pages_in_use(), 2u);  // peak sticks
  EXPECT_EQ(pool.reuses(), 0u);
  const auto c = pool.alloc_page();  // comes back from the free list
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(PagedKvPool, ExhaustionReturnsInvalid) {
  PagedKvPool pool({2, 2, 2});
  EXPECT_NE(pool.alloc_page(), PagedKvPool::kInvalidPage);
  EXPECT_NE(pool.alloc_page(), PagedKvPool::kInvalidPage);
  EXPECT_EQ(pool.alloc_page(), PagedKvPool::kInvalidPage);
}

TEST(PagedKvPool, DoubleFreeThrows) {
  PagedKvPool pool({2, 2, 2});
  const auto a = pool.alloc_page();
  pool.free_page(a);
  EXPECT_THROW(pool.free_page(a), std::logic_error);
}

// ---- PagedSequence ----------------------------------------------------------

std::vector<float> ramp(std::size_t dim, float base) {
  std::vector<float> x(dim);
  for (std::size_t d = 0; d < dim; ++d) x[d] = base + static_cast<float>(d);
  return x;
}

TEST(PagedSequence, AppendSpansPageBoundaries) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 10; ++t) {  // 2.5 pages of 4 tokens
    ASSERT_TRUE(seq.append(ramp(2, static_cast<float>(10 * t)),
                           ramp(2, static_cast<float>(-10 * t))));
  }
  EXPECT_EQ(seq.appended_tokens(), 10u);
  EXPECT_EQ(seq.pages_held(), 3u);
  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  ASSERT_EQ(view.len(), 10u);
  for (int t = 0; t < 10; ++t) {
    const auto u = static_cast<std::size_t>(t);
    EXPECT_EQ(ids[u], u);
    EXPECT_FLOAT_EQ(view.key(u)[0], static_cast<float>(10 * t));
    EXPECT_FLOAT_EQ(view.key(u)[1], static_cast<float>(10 * t + 1));
    EXPECT_FLOAT_EQ(view.value(u)[0], static_cast<float>(-10 * t));
  }
}

TEST(PagedSequence, ReclamationFreesOnlyFullDeadPagesAndKeepsSurvivorsReadable) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 12; ++t) {  // 3 full pages
    ASSERT_TRUE(seq.append(ramp(2, static_cast<float>(t)), ramp(2, 0.0f)));
  }
  // Kill all of page 1 (tokens 4..7) and part of page 0.
  for (std::size_t t = 4; t < 8; ++t) seq.mark_dead(t);
  seq.mark_dead(0);
  EXPECT_EQ(seq.sweep(), 1u);  // only page 1 is fully dead
  EXPECT_EQ(seq.pages_held(), 2u);
  EXPECT_EQ(pool.pages_free(), 8u - 2u);

  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  ASSERT_EQ(view.len(), 7u);  // 12 - 4 (page 1) - 1 (token 0)
  const std::vector<std::size_t> expected_ids{1, 2, 3, 8, 9, 10, 11};
  EXPECT_EQ(ids, expected_ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FLOAT_EQ(view.key(i)[0], static_cast<float>(ids[i]));
  }
}

TEST(PagedSequence, PartialTailPageIsNeverFreed) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 6; ++t) {  // page 0 full, page 1 holds 2 tokens
    ASSERT_TRUE(seq.append(ramp(2, 1.0f), ramp(2, 1.0f)));
  }
  seq.mark_dead(4);
  seq.mark_dead(5);
  EXPECT_EQ(seq.sweep(), 0u);  // tail partial: appends still land there
  ASSERT_TRUE(seq.append(ramp(2, 9.0f), ramp(2, 9.0f)));  // token 6, same page
  EXPECT_EQ(seq.pages_held(), 2u);
  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  const std::vector<std::size_t> expected_ids{0, 1, 2, 3, 6};
  EXPECT_EQ(ids, expected_ids);
  EXPECT_FLOAT_EQ(view.key(4)[0], 9.0f);
}

TEST(PagedKvCache, FragmentationCountsDeadAndTailSlack) {
  PagedKvPool pool({16, 4, 2});
  PagedKvCache cache(&pool, 1, 1);
  auto& seq = cache.seq(0, 0);
  for (int t = 0; t < 6; ++t) {  // page 0 full, page 1 half full
    ASSERT_TRUE(seq.append(ramp(2, 0.0f), ramp(2, 0.0f)));
  }
  // 8 allocated slots, 6 live: tail slack only.
  EXPECT_NEAR(cache.fragmentation(), 2.0 / 8.0, 1e-12);
  seq.mark_dead(1);
  EXPECT_NEAR(cache.fragmentation(), 3.0 / 8.0, 1e-12);
}

TEST(PagedSequence, ReleaseAllReturnsPages) {
  PagedKvPool pool({8, 4, 2});
  {
    PagedSequence seq(&pool);
    for (int t = 0; t < 9; ++t) {
      ASSERT_TRUE(seq.append(ramp(2, 0.0f), ramp(2, 0.0f)));
    }
    EXPECT_EQ(pool.pages_in_use(), 3u);
    seq.release_all();
    EXPECT_EQ(pool.pages_in_use(), 0u);
    EXPECT_EQ(seq.appended_tokens(), 0u);
  }
  // Destructor after release_all must not double free.
  EXPECT_EQ(pool.pages_free(), 8u);
}

// ---- PrunePersistence -------------------------------------------------------

TEST(PrunePersistence, StreaksAndReset) {
  PrunePersistence tracker(3);
  for (int i = 0; i < 2; ++i) tracker.observe(7, /*kept=*/false);
  EXPECT_FALSE(tracker.persistent(7));
  tracker.observe(7, /*kept=*/true);  // kept resets the streak
  EXPECT_EQ(tracker.streak(7), 0);
  for (int i = 0; i < 3; ++i) tracker.observe(7, /*kept=*/false);
  EXPECT_TRUE(tracker.persistent(7));
  EXPECT_FALSE(tracker.persistent(3));  // untouched token
}

// ---- workload: arrivals and decode streams ----------------------------------

TEST(Arrivals, PoissonTraceOrderedAndInRange) {
  wl::ArrivalParams params;
  params.rate = 1.5;
  params.prompt_min = 4;
  params.prompt_max = 9;
  params.decode_min = 2;
  params.decode_max = 5;
  Rng rng(11);
  const auto trace = wl::make_arrival_trace(params, 64, rng);
  ASSERT_EQ(trace.size(), 64u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].request_id, i);
    if (i > 0) {
      EXPECT_GE(trace[i].step, trace[i - 1].step);
    }
    EXPECT_GE(trace[i].prompt_len, 4u);
    EXPECT_LE(trace[i].prompt_len, 9u);
    EXPECT_GE(trace[i].decode_len, 2u);
    EXPECT_LE(trace[i].decode_len, 5u);
  }
}

TEST(Arrivals, BurstyTraceClustersMoreThanPoisson) {
  // Same mean arrival budget; the bursty trace should show a higher maximum
  // per-step arrival count (crude burstiness proxy, deterministic seeds).
  wl::ArrivalParams poisson;
  poisson.rate = 0.8;
  wl::ArrivalParams bursty = poisson;
  bursty.kind = wl::ArrivalKind::bursty;

  auto max_per_step = [](const std::vector<wl::ArrivalEvent>& trace) {
    std::size_t best = 0, run = 0, step = static_cast<std::size_t>(-1);
    for (const auto& e : trace) {
      run = (e.step == step) ? run + 1 : 1;
      step = e.step;
      best = std::max(best, run);
    }
    return best;
  };
  Rng rng_a(5), rng_b(5);
  const auto p = wl::make_arrival_trace(poisson, 256, rng_a);
  const auto b = wl::make_arrival_trace(bursty, 256, rng_b);
  EXPECT_GT(max_per_step(b), max_per_step(p));
}

TEST(DecodeStream, DeterministicAndShaped) {
  wl::DecodeStreamParams params;
  params.head_dim = 8;
  const auto a = wl::make_decode_stream(params, 5, 3, 2, 2, 99);
  const auto b = wl::make_decode_stream(params, 5, 3, 2, 2, 99);
  ASSERT_EQ(a.heads.size(), 4u);
  EXPECT_EQ(a.total_tokens(), 8u);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(a.heads[h].keys, b.heads[h].keys);
    EXPECT_EQ(a.heads[h].queries, b.heads[h].queries);
  }
  EXPECT_TRUE(a.spike[0]);  // attention sink is always spiky
}

// ---- engine helpers ---------------------------------------------------------

// Shadow check: every captured step of every retired request must match the
// single-request exact-attention path over the FULL context (including any
// reclaimed tokens), within the established pruning tolerance — the
// OutputErrorBoundedByDroppedMass bound, plus a small absolute term because
// the serving path quantizes over the live view, whose quantization scales
// can differ slightly from the full-context reference's.
void expect_outputs_match_exact(const ServeEngine& engine,
                                double extra_abs_tol) {
  const auto& config = engine.config();
  for (const auto& request : engine.requests()) {
    ASSERT_EQ(request.state, RequestState::finished);
    ASSERT_EQ(request.outputs.size(), request.event.decode_len);
    for (const auto& step : request.outputs) {
      const std::size_t context_len = step.position + 1;
      for (int layer = 0; layer < config.n_layer; ++layer) {
        for (int head = 0; head < config.n_head; ++head) {
          const auto inst =
              static_cast<std::size_t>(layer) * config.n_head + head;
          const auto view =
              request.stream.context_view(layer, head, context_len);
          const std::size_t decode_step = step.position -
                                          request.event.prompt_len;
          const auto q = request.stream.query(layer, head, decode_step);
          const auto exact =
              exact_attention_quantized(q, view, config.picker.quant);

          double kept_mass = 0.0;
          for (const std::size_t t : step.kept_tokens[inst]) {
            kept_mass += exact.probs[t];
          }
          const double dropped = 1.0 - kept_mass;
          float vmax = 0.0f;
          for (std::size_t t = 0; t < context_len; ++t) {
            for (const float x : view.value(t)) {
              vmax = std::max(vmax, std::abs(x));
            }
          }
          const double bound = 2.0 * std::max(dropped, 0.0) * vmax +
                               extra_abs_tol;
          ASSERT_EQ(step.out[inst].size(),
                    static_cast<std::size_t>(config.head_dim));
          for (int d = 0; d < config.head_dim; ++d) {
            EXPECT_NEAR(step.out[inst][static_cast<std::size_t>(d)],
                        exact.output[static_cast<std::size_t>(d)], bound)
                << "request " << request.event.request_id << " pos "
                << step.position << " layer " << layer << " head " << head
                << " dim " << d << " dropped " << dropped;
          }
        }
      }
    }
  }
}

std::vector<wl::ArrivalEvent> concurrent_trace(std::size_t count, Rng& rng,
                                               std::size_t prompt_min,
                                               std::size_t prompt_max,
                                               std::size_t decode_min,
                                               std::size_t decode_max) {
  // All requests arrive at step 0 so the whole set is concurrently in flight.
  wl::ArrivalParams params;
  params.rate = static_cast<double>(count) * 2.0;
  params.prompt_min = prompt_min;
  params.prompt_max = prompt_max;
  params.decode_min = decode_min;
  params.decode_max = decode_max;
  auto trace = wl::make_arrival_trace(params, count, rng);
  for (auto& event : trace) event.step = 0;
  return trace;
}

ServeConfig acceptance_config() {
  ServeConfig config;
  config.n_layer = 1;
  config.n_head = 2;
  config.head_dim = 32;
  config.max_batch = 40;
  config.pool_pages = 2048;  // ample: no preemption in the acceptance run
  config.page_tokens = 8;
  config.backend = BackendKind::token_picker;
  config.picker.estimator.threshold = 1e-3;
  config.persistence_window = 4;
  config.reclaim = true;
  config.capture_outputs = true;
  config.simulate_dram = true;
  return config;
}

// ---- the acceptance scenario ------------------------------------------------

TEST(ServeEngine, ThirtyTwoConcurrentRequestsMatchExactAndReclaim) {
  Rng rng(2024);
  const auto trace = concurrent_trace(32, rng, 16, 48, 16, 48);

  ServeConfig config = acceptance_config();
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 32u);
  EXPECT_EQ(metrics.preemptions, 0u);

  // All 32 were genuinely concurrent: admitted at step 0.
  for (const auto& request : engine.requests()) {
    EXPECT_EQ(request.admit_step, 0u);
  }

  // Every retired request's per-step attention output matches the
  // single-request exact path within the pruning tolerance.
  expect_outputs_match_exact(engine, 5e-3);

  // Pruning actually reclaimed storage, and freed pages were reused.
  EXPECT_GT(metrics.pages_reclaimed, 0u);
  EXPECT_GT(metrics.pool_reuses, 0u);

  // Peak page occupancy strictly below the no-reclamation baseline of the
  // identical scenario.
  ServeConfig baseline = config;
  baseline.reclaim = false;
  baseline.capture_outputs = false;
  ServeEngine no_reclaim(baseline);
  no_reclaim.submit_trace(trace);
  no_reclaim.run();
  EXPECT_EQ(no_reclaim.metrics().requests_retired, 32u);
  EXPECT_LT(metrics.pool_peak_pages, no_reclaim.metrics().pool_peak_pages);

  // Pruning also moved fewer bits than the no-pruning baseline accounting.
  EXPECT_LT(metrics.stats.total_bits_fetched(),
            metrics.stats.total_bits_baseline());

  // Latency proxy populated and ordered.
  ASSERT_FALSE(metrics.step_cycle_samples.empty());
  EXPECT_GE(metrics.p95_step_cycles(), metrics.p50_step_cycles());
  EXPECT_GE(metrics.p99_step_cycles(), metrics.p95_step_cycles());
  EXPECT_GT(metrics.tokens_per_second(), 0.0);
  EXPECT_GT(metrics.bytes_per_token(), 0.0);
}

TEST(ServeEngine, ExactBackendMatchesExactReferenceTightly) {
  Rng rng(77);
  const auto trace = concurrent_trace(6, rng, 8, 16, 6, 12);
  ServeConfig config = acceptance_config();
  config.backend = BackendKind::exact_quantized;
  config.reclaim = false;  // nothing prunes, nothing to reclaim
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 6u);
  // dropped mass is zero for the exact backend, so the bound reduces to the
  // absolute term.
  expect_outputs_match_exact(engine, 1e-5);
  EXPECT_EQ(engine.metrics().stats.total_bits_fetched(),
            engine.metrics().stats.total_bits_baseline());
}

TEST(ServeEngine, PreemptionUnderPoolPressureStillFinishesCorrectly) {
  Rng rng(31337);
  const auto trace = concurrent_trace(12, rng, 12, 24, 8, 24);
  ServeConfig config = acceptance_config();
  config.max_batch = 12;
  config.pool_pages = 60;  // tight: forces eviction + recompute
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 12u);
  EXPECT_GT(metrics.preemptions, 0u);
  // Preempted-and-recomputed requests still satisfy the exact-match bound.
  expect_outputs_match_exact(engine, 5e-3);
}

TEST(ServeEngine, StaggeredPoissonArrivalsDrainCompletely) {
  wl::ArrivalParams params;
  params.rate = 0.7;
  params.prompt_min = 8;
  params.prompt_max = 24;
  params.decode_min = 4;
  params.decode_max = 16;
  Rng rng(4242);
  const auto trace = wl::make_arrival_trace(params, 24, rng);

  ServeConfig config = acceptance_config();
  config.max_batch = 6;  // smaller than the request count: queueing happens
  config.capture_outputs = false;
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  EXPECT_EQ(engine.metrics().requests_retired, 24u);
  std::uint64_t tokens = 0;
  for (const auto& request : engine.requests()) {
    EXPECT_EQ(request.state, RequestState::finished);
    EXPECT_GE(request.admit_step, request.event.step);
    tokens += request.event.decode_len;
  }
  EXPECT_EQ(engine.metrics().tokens_generated, tokens);
}

TEST(ServeEngine, SpAttenBackendRunsToCompletion) {
  Rng rng(99);
  const auto trace = concurrent_trace(8, rng, 12, 20, 6, 10);
  ServeConfig config = acceptance_config();
  config.backend = BackendKind::spatten;
  config.reclaim = false;  // reclamation is Token-Picker-driven
  config.capture_outputs = false;
  config.simulate_dram = false;
  config.spatten.final_keep_ratio = 0.6;
  config.spatten.start_layer = 0;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 8u);
  EXPECT_GT(engine.metrics().stats.total_bits_fetched(), 0u);
}

TEST(ServeEngine, FragmentationReportedWithinUnitInterval) {
  Rng rng(1);
  const auto trace = concurrent_trace(8, rng, 8, 24, 8, 16);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_GE(engine.metrics().avg_fragmentation, 0.0);
  EXPECT_LE(engine.metrics().avg_fragmentation, 1.0);
}

}  // namespace
}  // namespace topick::serve
