#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/exact_attention.h"
#include "core/token_picker.h"
#include "serve/batcher.h"
#include "serve/paged_kv_pool.h"
#include "serve/paged_sequence.h"
#include "serve/serve_engine.h"
#include "workload/arrivals.h"
#include "workload/decode_stream.h"

namespace topick::serve {
namespace {

// ---- PagedKvPool ------------------------------------------------------------

TEST(PagedKvPool, AllocFreeAccounting) {
  PagedKvPool pool({4, 2, 3});
  EXPECT_EQ(pool.pages_free(), 4u);
  const auto a = pool.alloc_page();
  const auto b = pool.alloc_page();
  ASSERT_NE(a, PagedKvPool::kInvalidPage);
  ASSERT_NE(b, PagedKvPool::kInvalidPage);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.pages_in_use(), 2u);
  EXPECT_EQ(pool.peak_pages_in_use(), 2u);
  pool.free_page(a);
  EXPECT_EQ(pool.pages_in_use(), 1u);
  EXPECT_EQ(pool.peak_pages_in_use(), 2u);  // peak sticks
  EXPECT_EQ(pool.reuses(), 0u);
  const auto c = pool.alloc_page();  // comes back from the free list
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(PagedKvPool, ExhaustionReturnsInvalid) {
  PagedKvPool pool({2, 2, 2});
  EXPECT_NE(pool.alloc_page(), PagedKvPool::kInvalidPage);
  EXPECT_NE(pool.alloc_page(), PagedKvPool::kInvalidPage);
  EXPECT_EQ(pool.alloc_page(), PagedKvPool::kInvalidPage);
}

TEST(PagedKvPool, DoubleFreeThrows) {
  PagedKvPool pool({2, 2, 2});
  const auto a = pool.alloc_page();
  pool.free_page(a);
  EXPECT_THROW(pool.free_page(a), std::logic_error);
}

TEST(PagedKvPool, RejectsDegenerateConfigs) {
  // A zero-page pool would make occupancy() divide by zero and silently
  // poison FleetMetrics aggregates with NaN; the constructor must refuse it
  // (and the other zero dimensions) up front.
  EXPECT_THROW(PagedKvPool({0, 8, 4}), std::logic_error);
  EXPECT_THROW(PagedKvPool({4, 0, 4}), std::logic_error);
  EXPECT_THROW(PagedKvPool({4, 8, 0}), std::logic_error);
}

TEST(PagedKvPool, OccupancyIsFiniteAndTracksUse) {
  PagedKvPool pool({2, 4, 2});
  EXPECT_EQ(pool.occupancy(), 0.0);
  const auto a = pool.alloc_page();
  EXPECT_TRUE(std::isfinite(pool.occupancy()));
  EXPECT_NEAR(pool.occupancy(), 0.5, 1e-12);
  pool.alloc_page();
  EXPECT_NEAR(pool.occupancy(), 1.0, 1e-12);
  pool.free_page(a);
  EXPECT_NEAR(pool.occupancy(), 0.5, 1e-12);
}

// ---- PagedSequence ----------------------------------------------------------

std::vector<float> ramp(std::size_t dim, float base) {
  std::vector<float> x(dim);
  for (std::size_t d = 0; d < dim; ++d) x[d] = base + static_cast<float>(d);
  return x;
}

TEST(PagedSequence, AppendSpansPageBoundaries) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 10; ++t) {  // 2.5 pages of 4 tokens
    ASSERT_TRUE(seq.append(ramp(2, static_cast<float>(10 * t)),
                           ramp(2, static_cast<float>(-10 * t))));
  }
  EXPECT_EQ(seq.appended_tokens(), 10u);
  EXPECT_EQ(seq.pages_held(), 3u);
  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  ASSERT_EQ(view.len(), 10u);
  for (int t = 0; t < 10; ++t) {
    const auto u = static_cast<std::size_t>(t);
    EXPECT_EQ(ids[u], u);
    EXPECT_FLOAT_EQ(view.key(u)[0], static_cast<float>(10 * t));
    EXPECT_FLOAT_EQ(view.key(u)[1], static_cast<float>(10 * t + 1));
    EXPECT_FLOAT_EQ(view.value(u)[0], static_cast<float>(-10 * t));
  }
}

TEST(PagedSequence, ReclamationFreesOnlyFullDeadPagesAndKeepsSurvivorsReadable) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 12; ++t) {  // 3 full pages
    ASSERT_TRUE(seq.append(ramp(2, static_cast<float>(t)), ramp(2, 0.0f)));
  }
  // Kill all of page 1 (tokens 4..7) and part of page 0.
  for (std::size_t t = 4; t < 8; ++t) seq.mark_dead(t);
  seq.mark_dead(0);
  EXPECT_EQ(seq.sweep(), 1u);  // only page 1 is fully dead
  EXPECT_EQ(seq.pages_held(), 2u);
  EXPECT_EQ(pool.pages_free(), 8u - 2u);

  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  ASSERT_EQ(view.len(), 7u);  // 12 - 4 (page 1) - 1 (token 0)
  const std::vector<std::size_t> expected_ids{1, 2, 3, 8, 9, 10, 11};
  EXPECT_EQ(ids, expected_ids);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FLOAT_EQ(view.key(i)[0], static_cast<float>(ids[i]));
  }
}

TEST(PagedSequence, PartialTailPageIsNeverFreed) {
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 6; ++t) {  // page 0 full, page 1 holds 2 tokens
    ASSERT_TRUE(seq.append(ramp(2, 1.0f), ramp(2, 1.0f)));
  }
  seq.mark_dead(4);
  seq.mark_dead(5);
  EXPECT_EQ(seq.sweep(), 0u);  // tail partial: appends still land there
  ASSERT_TRUE(seq.append(ramp(2, 9.0f), ramp(2, 9.0f)));  // token 6, same page
  EXPECT_EQ(seq.pages_held(), 2u);
  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  const std::vector<std::size_t> expected_ids{0, 1, 2, 3, 6};
  EXPECT_EQ(ids, expected_ids);
  EXPECT_FLOAT_EQ(view.key(4)[0], 9.0f);
}

TEST(PagedSequence, SweptFullTailPageThenAppendKeepsIndicesConsistent) {
  // A fully-dead page sitting at an exact page boundary (the tail page is
  // full, so sweep may free it) must leave the page table, pages_held, and
  // the view's slot mapping consistent when the sequence then appends past
  // the hole.
  PagedKvPool pool({8, 4, 2});
  PagedSequence seq(&pool);
  for (int t = 0; t < 8; ++t) {  // exactly 2 full pages
    ASSERT_TRUE(seq.append(ramp(2, static_cast<float>(t)), ramp(2, 0.0f)));
  }
  for (std::size_t t = 4; t < 8; ++t) seq.mark_dead(t);
  EXPECT_EQ(seq.sweep(), 1u);  // page 1 is full AND fully dead -> freed
  EXPECT_EQ(seq.pages_held(), 1u);
  EXPECT_EQ(pool.pages_in_use(), 1u);

  // Append past the swept boundary: token 8 opens logical page 2.
  ASSERT_TRUE(seq.append(ramp(2, 8.0f), ramp(2, 0.0f)));
  EXPECT_EQ(seq.appended_tokens(), 9u);
  EXPECT_EQ(seq.pages_held(), 2u);
  EXPECT_EQ(pool.pages_in_use(), 2u);

  std::vector<std::size_t> ids;
  const auto view = seq.view(&ids);
  const std::vector<std::size_t> expected_ids{0, 1, 2, 3, 8};
  EXPECT_EQ(ids, expected_ids);
  ASSERT_EQ(view.key_pages.size(), 2u);  // swept page absent from the table
  // Tokens 0..3 map into view page 0; token 8 is slot 0 of view page 1.
  const std::vector<std::size_t> expected_slots{0, 1, 2, 3, 4};
  EXPECT_EQ(view.slots, expected_slots);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FLOAT_EQ(view.key(i)[0], static_cast<float>(ids[i]));
  }
}

// The serve-side RescaleSource contract end to end: a QuantizedKvCache with
// a PagedRescaleSource provider and NO floats of its own survives a
// mid-decode record-holder eviction bit-identically to quantizing the
// survivors from scratch. The engine's ordering discipline is replicated:
// the cache eviction (whose rescale queries the provider) runs BEFORE
// mark_dead + sweep release the pool pages.
TEST(PagedSequence, PoolProviderKeepsRecordHolderEvictionBitIdentical) {
  PagedKvPool pool({8, 4, 16});
  PagedSequence seq(&pool);
  const std::size_t dim = 16;
  QuantizedKvCache cache(dim);
  const PagedRescaleSource provider(&seq);
  cache.set_rescale_source(&provider);

  Rng rng(0x9a6e);
  std::vector<std::vector<float>> k_rows, v_rows;
  for (std::size_t t = 0; t < 14; ++t) {
    std::vector<float> k(dim), v(dim);
    for (auto& x : k) x = static_cast<float>(rng.normal() * 0.5);
    for (auto& x : v) x = static_cast<float>(rng.normal() * 0.5);
    if (t == 5) k[3] = 25.0f;  // the record holder, in page 1 (tokens 4..7)
    ASSERT_TRUE(seq.append(k, v));
    cache.append(k, v, t);
    k_rows.push_back(std::move(k));
    v_rows.push_back(std::move(v));
  }

  // Mid-decode, persistence prunes all of page 1 — record holder included.
  const std::vector<std::size_t> dead{4, 5, 6, 7};
  const auto rescales_before = cache.key_rescales();
  EXPECT_EQ(cache.evict_ids(dead), 4u);  // provider queried for survivors
  EXPECT_EQ(cache.key_rescales(), rescales_before + 1);
  for (const auto id : dead) seq.mark_dead(id);
  EXPECT_EQ(seq.sweep(), 1u);  // only now does the page leave the pool

  // Bit-identity vs a fresh quantize of the survivors' floats.
  std::vector<float> k_flat, v_flat;
  std::vector<std::size_t> survivors;
  for (std::size_t t = 0; t < 14; ++t) {
    if (std::find(dead.begin(), dead.end(), t) != dead.end()) continue;
    survivors.push_back(t);
    k_flat.insert(k_flat.end(), k_rows[t].begin(), k_rows[t].end());
    v_flat.insert(v_flat.end(), v_rows[t].begin(), v_rows[t].end());
  }
  const KvHeadView fresh_view{k_flat.data(), v_flat.data(), survivors.size(),
                              dim};
  const QuantizedKv fresh = quantize_kv(fresh_view, cache.config().base);
  const QuantizedKvView cached = cache.view();
  ASSERT_EQ(cache.len(), survivors.size());
  EXPECT_EQ(cached.key_params.scale, fresh.keys[0].params.scale);
  EXPECT_EQ(cached.value_params.scale, fresh.values[0].params.scale);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(cache.id_at(i), survivors[i]);
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(cached.key(i)[d], fresh.keys[i].values[d]);
      EXPECT_EQ(cached.value(i)[d], fresh.values[i].values[d]);
    }
  }
  // And the retired mirror stays retired.
  EXPECT_EQ(cache.residency().f32_mirror, 0u);
}

TEST(PagedKvCache, FragmentationCountsDeadAndTailSlack) {
  PagedKvPool pool({16, 4, 2});
  PagedKvCache cache(&pool, 1, 1);
  auto& seq = cache.seq(0, 0);
  for (int t = 0; t < 6; ++t) {  // page 0 full, page 1 half full
    ASSERT_TRUE(seq.append(ramp(2, 0.0f), ramp(2, 0.0f)));
  }
  // 8 allocated slots, 6 live: tail slack only.
  EXPECT_NEAR(cache.fragmentation(), 2.0 / 8.0, 1e-12);
  seq.mark_dead(1);
  EXPECT_NEAR(cache.fragmentation(), 3.0 / 8.0, 1e-12);
}

TEST(PagedSequence, ReleaseAllReturnsPages) {
  PagedKvPool pool({8, 4, 2});
  {
    PagedSequence seq(&pool);
    for (int t = 0; t < 9; ++t) {
      ASSERT_TRUE(seq.append(ramp(2, 0.0f), ramp(2, 0.0f)));
    }
    EXPECT_EQ(pool.pages_in_use(), 3u);
    seq.release_all();
    EXPECT_EQ(pool.pages_in_use(), 0u);
    EXPECT_EQ(seq.appended_tokens(), 0u);
  }
  // Destructor after release_all must not double free.
  EXPECT_EQ(pool.pages_free(), 8u);
}

// ---- PrunePersistence -------------------------------------------------------

TEST(PrunePersistence, StreaksAndReset) {
  PrunePersistence tracker(3);
  for (int i = 0; i < 2; ++i) tracker.observe(7, /*kept=*/false);
  EXPECT_FALSE(tracker.persistent(7));
  tracker.observe(7, /*kept=*/true);  // kept resets the streak
  EXPECT_EQ(tracker.streak(7), 0);
  for (int i = 0; i < 3; ++i) tracker.observe(7, /*kept=*/false);
  EXPECT_TRUE(tracker.persistent(7));
  EXPECT_FALSE(tracker.persistent(3));  // untouched token
}

// ---- workload: arrivals and decode streams ----------------------------------

TEST(Arrivals, PoissonTraceOrderedAndInRange) {
  wl::ArrivalParams params;
  params.rate = 1.5;
  params.prompt_min = 4;
  params.prompt_max = 9;
  params.decode_min = 2;
  params.decode_max = 5;
  Rng rng(11);
  const auto trace = wl::make_arrival_trace(params, 64, rng);
  ASSERT_EQ(trace.size(), 64u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].request_id, i);
    if (i > 0) {
      EXPECT_GE(trace[i].step, trace[i - 1].step);
    }
    EXPECT_GE(trace[i].prompt_len, 4u);
    EXPECT_LE(trace[i].prompt_len, 9u);
    EXPECT_GE(trace[i].decode_len, 2u);
    EXPECT_LE(trace[i].decode_len, 5u);
  }
}

TEST(Arrivals, BurstyTraceClustersMoreThanPoisson) {
  // Same mean arrival budget; the bursty trace should show a higher maximum
  // per-step arrival count (crude burstiness proxy, deterministic seeds).
  wl::ArrivalParams poisson;
  poisson.rate = 0.8;
  wl::ArrivalParams bursty = poisson;
  bursty.kind = wl::ArrivalKind::bursty;

  auto max_per_step = [](const std::vector<wl::ArrivalEvent>& trace) {
    std::size_t best = 0, run = 0, step = static_cast<std::size_t>(-1);
    for (const auto& e : trace) {
      run = (e.step == step) ? run + 1 : 1;
      step = e.step;
      best = std::max(best, run);
    }
    return best;
  };
  Rng rng_a(5), rng_b(5);
  const auto p = wl::make_arrival_trace(poisson, 256, rng_a);
  const auto b = wl::make_arrival_trace(bursty, 256, rng_b);
  EXPECT_GT(max_per_step(b), max_per_step(p));
}

TEST(DecodeStream, DeterministicAndShaped) {
  wl::DecodeStreamParams params;
  params.head_dim = 8;
  const auto a = wl::make_decode_stream(params, 5, 3, 2, 2, 99);
  const auto b = wl::make_decode_stream(params, 5, 3, 2, 2, 99);
  ASSERT_EQ(a.heads.size(), 4u);
  EXPECT_EQ(a.total_tokens(), 8u);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(a.heads[h].keys, b.heads[h].keys);
    EXPECT_EQ(a.heads[h].queries, b.heads[h].queries);
  }
  EXPECT_TRUE(a.spike[0]);  // attention sink is always spiky
}

// ---- engine helpers ---------------------------------------------------------

// Shadow check: every captured step of every retired request must match the
// single-request exact-attention path over the FULL context (including any
// reclaimed tokens), within the established pruning tolerance — the
// OutputErrorBoundedByDroppedMass bound, plus a small absolute term because
// the serving path quantizes over the live view, whose quantization scales
// can differ slightly from the full-context reference's.
void expect_outputs_match_exact(const ServeEngine& engine,
                                double extra_abs_tol) {
  const auto& config = engine.config();
  for (const auto& request : engine.requests()) {
    ASSERT_EQ(request.state, RequestState::finished);
    ASSERT_EQ(request.outputs.size(), request.event.decode_len);
    for (const auto& step : request.outputs) {
      const std::size_t context_len = step.position + 1;
      for (int layer = 0; layer < config.n_layer; ++layer) {
        for (int head = 0; head < config.n_head; ++head) {
          const auto inst =
              static_cast<std::size_t>(layer) * config.n_head + head;
          const auto view =
              request.stream.context_view(layer, head, context_len);
          const std::size_t decode_step = step.position -
                                          request.event.prompt_len;
          const auto q = request.stream.query(layer, head, decode_step);
          const auto exact =
              exact_attention_quantized(q, view, config.picker.quant);

          double kept_mass = 0.0;
          for (const std::size_t t : step.kept_tokens[inst]) {
            kept_mass += exact.probs[t];
          }
          const double dropped = 1.0 - kept_mass;
          float vmax = 0.0f;
          for (std::size_t t = 0; t < context_len; ++t) {
            for (const float x : view.value(t)) {
              vmax = std::max(vmax, std::abs(x));
            }
          }
          const double bound = 2.0 * std::max(dropped, 0.0) * vmax +
                               extra_abs_tol;
          ASSERT_EQ(step.out[inst].size(),
                    static_cast<std::size_t>(config.head_dim));
          for (int d = 0; d < config.head_dim; ++d) {
            EXPECT_NEAR(step.out[inst][static_cast<std::size_t>(d)],
                        exact.output[static_cast<std::size_t>(d)], bound)
                << "request " << request.event.request_id << " pos "
                << step.position << " layer " << layer << " head " << head
                << " dim " << d << " dropped " << dropped;
          }
        }
      }
    }
  }
}

std::vector<wl::ArrivalEvent> concurrent_trace(std::size_t count, Rng& rng,
                                               std::size_t prompt_min,
                                               std::size_t prompt_max,
                                               std::size_t decode_min,
                                               std::size_t decode_max) {
  // All requests arrive at step 0 so the whole set is concurrently in flight.
  wl::ArrivalParams params;
  params.rate = static_cast<double>(count) * 2.0;
  params.prompt_min = prompt_min;
  params.prompt_max = prompt_max;
  params.decode_min = decode_min;
  params.decode_max = decode_max;
  auto trace = wl::make_arrival_trace(params, count, rng);
  for (auto& event : trace) event.step = 0;
  return trace;
}

ServeConfig acceptance_config() {
  ServeConfig config;
  config.n_layer = 1;
  config.n_head = 2;
  config.head_dim = 32;
  config.max_batch = 40;
  config.pool_pages = 2048;  // ample: no preemption in the acceptance run
  config.page_tokens = 8;
  config.backend = BackendKind::token_picker;
  config.picker.estimator.threshold = 1e-3;
  config.persistence_window = 4;
  config.reclaim = true;
  config.capture_outputs = true;
  config.simulate_dram = true;
  return config;
}

// ---- the acceptance scenario ------------------------------------------------

TEST(ServeEngine, ThirtyTwoConcurrentRequestsMatchExactAndReclaim) {
  Rng rng(2024);
  const auto trace = concurrent_trace(32, rng, 16, 48, 16, 48);

  ServeConfig config = acceptance_config();
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 32u);
  EXPECT_EQ(metrics.preemptions, 0u);

  // All 32 were genuinely concurrent: admitted at step 0.
  for (const auto& request : engine.requests()) {
    EXPECT_EQ(request.admit_step, 0u);
  }

  // Every retired request's per-step attention output matches the
  // single-request exact path within the pruning tolerance.
  expect_outputs_match_exact(engine, 5e-3);

  // Pruning actually reclaimed storage, and freed pages were reused.
  EXPECT_GT(metrics.pages_reclaimed, 0u);
  EXPECT_GT(metrics.pool_reuses, 0u);

  // Peak page occupancy strictly below the no-reclamation baseline of the
  // identical scenario.
  ServeConfig baseline = config;
  baseline.reclaim = false;
  baseline.capture_outputs = false;
  ServeEngine no_reclaim(baseline);
  no_reclaim.submit_trace(trace);
  no_reclaim.run();
  EXPECT_EQ(no_reclaim.metrics().requests_retired, 32u);
  EXPECT_LT(metrics.pool_peak_pages, no_reclaim.metrics().pool_peak_pages);

  // Pruning also moved fewer bits than the no-pruning baseline accounting.
  EXPECT_LT(metrics.stats.total_bits_fetched(),
            metrics.stats.total_bits_baseline());

  // Latency proxy populated and ordered.
  ASSERT_FALSE(metrics.step_cycle_samples.empty());
  EXPECT_GE(metrics.p95_step_cycles(), metrics.p50_step_cycles());
  EXPECT_GE(metrics.p99_step_cycles(), metrics.p95_step_cycles());
  EXPECT_GT(metrics.tokens_per_second(), 0.0);
  EXPECT_GT(metrics.bytes_per_token(), 0.0);
}

TEST(ServeEngine, ExactBackendMatchesExactReferenceTightly) {
  Rng rng(77);
  const auto trace = concurrent_trace(6, rng, 8, 16, 6, 12);
  ServeConfig config = acceptance_config();
  config.backend = BackendKind::exact_quantized;
  config.reclaim = false;  // nothing prunes, nothing to reclaim
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 6u);
  // dropped mass is zero for the exact backend, so the bound reduces to the
  // absolute term.
  expect_outputs_match_exact(engine, 1e-5);
  EXPECT_EQ(engine.metrics().stats.total_bits_fetched(),
            engine.metrics().stats.total_bits_baseline());
}

TEST(ServeEngine, PreemptionUnderPoolPressureStillFinishesCorrectly) {
  Rng rng(31337);
  const auto trace = concurrent_trace(12, rng, 12, 24, 8, 24);
  ServeConfig config = acceptance_config();
  config.max_batch = 12;
  config.pool_pages = 60;  // tight: forces eviction + recompute
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 12u);
  EXPECT_GT(metrics.preemptions, 0u);
  // Re-prefill after preemption replays the prompt (plus already-generated
  // tokens), so charged prefill tokens exceed the one-shot prompt total.
  std::size_t prompt_total = 0;
  for (const auto& event : trace) prompt_total += event.prompt_len;
  EXPECT_GT(metrics.prefill_tokens, prompt_total);
  // Preempted-and-recomputed requests still satisfy the exact-match bound.
  expect_outputs_match_exact(engine, 5e-3);
}

TEST(ServeEngine, StaggeredPoissonArrivalsDrainCompletely) {
  wl::ArrivalParams params;
  params.rate = 0.7;
  params.prompt_min = 8;
  params.prompt_max = 24;
  params.decode_min = 4;
  params.decode_max = 16;
  Rng rng(4242);
  const auto trace = wl::make_arrival_trace(params, 24, rng);

  ServeConfig config = acceptance_config();
  config.max_batch = 6;  // smaller than the request count: queueing happens
  config.capture_outputs = false;
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  EXPECT_EQ(engine.metrics().requests_retired, 24u);
  std::uint64_t tokens = 0;
  for (const auto& request : engine.requests()) {
    EXPECT_EQ(request.state, RequestState::finished);
    EXPECT_GE(request.admit_step, request.event.step);
    tokens += request.event.decode_len;
  }
  EXPECT_EQ(engine.metrics().tokens_generated, tokens);
}

TEST(ServeEngine, SpAttenBackendRunsToCompletion) {
  Rng rng(99);
  const auto trace = concurrent_trace(8, rng, 12, 20, 6, 10);
  ServeConfig config = acceptance_config();
  config.backend = BackendKind::spatten;
  config.reclaim = false;  // reclamation is Token-Picker-driven
  config.capture_outputs = false;
  config.simulate_dram = false;
  config.spatten.final_keep_ratio = 0.6;
  config.spatten.start_layer = 0;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_EQ(engine.metrics().requests_retired, 8u);
  EXPECT_GT(engine.metrics().stats.total_bits_fetched(), 0u);
}

// ---- DRAM address layout ----------------------------------------------------

TEST(DramLayout, StreamAddressesStayWithinTheRequestRegion) {
  const std::uint64_t granule = 32;
  const std::uint64_t per_region = dram_layout::kRegionBytes / granule;
  // Offsets far past the region size (a long request) must wrap in place
  // instead of walking into request 1's address range (the aliasing bug:
  // dram_offset_ grew unboundedly past the 64 MiB region).
  const std::uint64_t offsets[] = {0, per_region - 1, per_region,
                                   3 * per_region + 17, std::uint64_t{1} << 40};
  for (const std::uint64_t off : offsets) {
    const auto addr = dram_layout::stream_addr(0, off, granule);
    EXPECT_GE(addr, dram_layout::region_base(0)) << "offset " << off;
    EXPECT_LT(addr, dram_layout::region_base(1)) << "offset " << off;
  }
  // Wrap is positional: offset per_region + 5 lands where offset 5 does.
  EXPECT_EQ(dram_layout::stream_addr(2, per_region + 5, granule),
            dram_layout::region_base(2) + 5 * granule);
}

// ---- chunked prefill --------------------------------------------------------

TEST(ServeEngine, ChunkedPrefillChargesTrafficAndDelaysFirstToken) {
  Rng rng(404);
  const auto trace = concurrent_trace(4, rng, 32, 32, 8, 8);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.prefill_chunk_tokens = 16;  // 32-token prompts -> 2 prefill steps
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 4u);
  // Prefill is no longer free: every prompt token's K/V write was charged.
  EXPECT_EQ(metrics.prefill_tokens, 4u * 32u);
  const std::uint64_t per_token =
      engine.requests()[0].stream.token_write_bits(
          config.picker.quant.total_bits);
  EXPECT_EQ(metrics.prefill_bits, 4u * 32u * per_token);

  ASSERT_EQ(metrics.ttft_cycle_samples.size(), 4u);
  ASSERT_EQ(metrics.request_latency_cycle_samples.size(), 4u);
  EXPECT_GT(metrics.p50_ttft_cycles(), 0.0);
  EXPECT_GE(metrics.p99_ttft_cycles(), metrics.p50_ttft_cycles());
  EXPECT_GE(metrics.p99_request_latency_cycles(),
            metrics.p50_request_latency_cycles());

  for (const auto& request : engine.requests()) {
    // Two prefill steps before the first decode step.
    EXPECT_EQ(request.first_token_step, request.admit_step + 2);
    EXPECT_EQ(request.prefill_bits, 32u * per_token);
    EXPECT_GT(request.ttft_cycles(), 0u);
    EXPECT_GE(request.latency_cycles(), request.ttft_cycles());
  }
}

TEST(ServeEngine, MonolithicPrefillLandsInOneCostedStep) {
  Rng rng(404);
  const auto trace = concurrent_trace(4, rng, 32, 32, 8, 8);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.prefill_chunk_tokens = 0;  // monolithic: whole prompt in one step
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  EXPECT_EQ(engine.metrics().requests_retired, 4u);
  EXPECT_EQ(engine.metrics().prefill_tokens, 4u * 32u);
  EXPECT_GT(engine.metrics().prefill_bits, 0u);
  for (const auto& request : engine.requests()) {
    EXPECT_EQ(request.first_token_step, request.admit_step + 1);
  }
}

TEST(ServeEngine, MaxPrefillSlotsStaggerAdmission) {
  Rng rng(7);
  const auto trace = concurrent_trace(3, rng, 16, 16, 4, 4);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.simulate_dram = false;
  config.prefill_chunk_tokens = 4;  // 16-token prompts -> 4 prefill steps
  config.max_prefill = 1;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  EXPECT_EQ(engine.metrics().requests_retired, 3u);
  // One prefill slot: each admission waits for the previous request to
  // finish its 4-step prefill.
  std::vector<std::size_t> admit_steps;
  for (const auto& request : engine.requests()) {
    admit_steps.push_back(request.admit_step);
  }
  std::sort(admit_steps.begin(), admit_steps.end());
  EXPECT_EQ(admit_steps, (std::vector<std::size_t>{0, 4, 8}));
  EXPECT_GT(engine.metrics().avg_queue_wait_steps(), 0.0);
}

TEST(ServeEngine, SameStepAdmissionsDoNotOvercommitThePool) {
  // Chunked prefill allocates pages lazily, so admission must reserve the
  // outstanding demand of already-admitted prefills: two requests that
  // together exceed the pool must be admitted sequentially, not both at
  // step 0 followed by mid-prefill preemption churn.
  Rng rng(55);
  const auto trace = concurrent_trace(2, rng, 32, 32, 4, 4);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.simulate_dram = false;
  config.prefill_chunk_tokens = 8;
  // Each request needs ceil(33/8) * 2 heads = 10 pages; only one fits.
  config.pool_pages = 16;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  EXPECT_EQ(engine.metrics().requests_retired, 2u);
  EXPECT_EQ(engine.metrics().preemptions, 0u);
  EXPECT_NE(engine.requests()[0].admit_step, engine.requests()[1].admit_step);
}

TEST(ServeEngine, ZeroDecodeLenRetiresAtArrivalWithoutTraffic) {
  wl::ArrivalEvent empty;
  empty.request_id = 0;
  empty.step = 0;
  empty.prompt_len = 12;
  empty.decode_len = 0;  // nothing to generate
  empty.stream_seed = 1;
  wl::ArrivalEvent normal;
  normal.request_id = 1;
  normal.step = 0;
  normal.prompt_len = 8;
  normal.decode_len = 4;
  normal.stream_seed = 2;

  ServeConfig config = acceptance_config();
  ServeEngine engine(config);
  engine.submit_trace({empty, normal});
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 2u);
  // The zero-length request generated no spurious token and moved no bytes.
  const Request& req = engine.requests()[0];
  EXPECT_EQ(req.state, RequestState::finished);
  EXPECT_EQ(req.generated, 0u);
  EXPECT_TRUE(req.outputs.empty());
  EXPECT_EQ(req.prefill_bits, 0u);
  EXPECT_EQ(req.dram_cycles, 0u);
  EXPECT_EQ(req.stats.total_bits_fetched(), 0u);
  EXPECT_EQ(metrics.tokens_generated, 4u);
}

TEST(ServeEngine, CapturedViewTokensReflectPostReclaimLiveness) {
  // With persistence_window = 1 a token pruned this step is reclaimed this
  // step, so the post-reclaim live set must equal the kept set exactly. The
  // stale pre-reclaim capture made view_tokens a strict superset whenever
  // anything was pruned.
  Rng rng(123);
  const auto trace = concurrent_trace(4, rng, 16, 32, 8, 16);
  ServeConfig config = acceptance_config();
  config.persistence_window = 1;
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();

  const auto& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests_retired, 4u);
  ASSERT_GT(metrics.stats.tokens_total, metrics.stats.tokens_kept)
      << "scenario must actually prune for this regression to bite";
  for (const auto& request : engine.requests()) {
    for (const auto& step : request.outputs) {
      for (std::size_t inst = 0; inst < step.view_tokens.size(); ++inst) {
        // kept_tokens follows the picker's (out-of-order) decision order;
        // compare as sets.
        auto kept = step.kept_tokens[inst];
        std::sort(kept.begin(), kept.end());
        EXPECT_EQ(step.view_tokens[inst], kept)
            << "request " << request.event.request_id << " pos "
            << step.position << " inst " << inst;
      }
    }
  }
}

TEST(ServeEngine, FragmentationReportedWithinUnitInterval) {
  Rng rng(1);
  const auto trace = concurrent_trace(8, rng, 8, 24, 8, 16);
  ServeConfig config = acceptance_config();
  config.capture_outputs = false;
  config.simulate_dram = false;
  ServeEngine engine(config);
  engine.submit_trace(trace);
  engine.run();
  EXPECT_GE(engine.metrics().avg_fragmentation, 0.0);
  EXPECT_LE(engine.metrics().avg_fragmentation, 1.0);
}

}  // namespace
}  // namespace topick::serve
