#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace topick {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.shape_str(), "[3, 4]");
}

TEST(Tensor, AtIndexingRoundTrip) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.data()[1 * 3 + 2], 5.0f);
}

TEST(Tensor, ThreeDimIndexing) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.data()[(1 * 3 + 2) * 4 + 3], 7.0f);
}

TEST(Tensor, BadIndexThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), std::logic_error);
  EXPECT_THROW(t.at(5), std::logic_error);
}

TEST(Tensor, RowViewAliasesStorage) {
  Tensor t({2, 3});
  auto row = t.row(1);
  row[0] = 9.0f;
  EXPECT_FLOAT_EQ(t.at(1, 0), 9.0f);
}

TEST(Tensor, RandnHasRequestedSpread) {
  Rng rng(3);
  Tensor t = Tensor::randn({100, 100}, rng, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (float v : t.flat()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / n), 0.5, 0.02);
}

TEST(Ops, MatmulMatchesHandComputation) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulNtAgreesWithMatmul) {
  Rng rng(4);
  Tensor a = Tensor::randn({5, 7}, rng);
  Tensor b = Tensor::randn({7, 6}, rng);
  Tensor bt({6, 7});
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Tensor c1 = ops::matmul(a, b);
  const Tensor c2 = ops::matmul_nt(a, bt);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-4f);
  }
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(ops::matmul(a, b), std::logic_error);
}

TEST(Ops, GemvMatchesMatmul) {
  Rng rng(5);
  Tensor w = Tensor::randn({4, 6}, rng);
  std::vector<float> x(6), y(4);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  ops::gemv(w, x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < 6; ++j) acc += w.at(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-5f);
  }
}

TEST(Ops, SoftmaxSumsToOneAndOrders) {
  std::vector<float> xs{1.0f, 2.0f, 3.0f};
  ops::softmax_inplace(xs);
  EXPECT_NEAR(xs[0] + xs[1] + xs[2], 1.0f, 1e-6f);
  EXPECT_LT(xs[0], xs[1]);
  EXPECT_LT(xs[1], xs[2]);
}

TEST(Ops, SoftmaxStableForLargeInputs) {
  std::vector<float> xs{1000.0f, 1001.0f};
  ops::softmax_inplace(xs);
  EXPECT_NEAR(xs[0], 1.0f / (1.0f + std::exp(1.0f)), 1e-5f);
  EXPECT_FALSE(std::isnan(xs[1]));
}

TEST(Ops, SoftmaxRowsNormalizesEachRow) {
  Rng rng(6);
  Tensor t = Tensor::randn({4, 8}, rng);
  ops::softmax_rows(t);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (float v : t.row(i)) sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, LayernormNormalizesAndAffines) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> gamma{2.0f, 2.0f, 2.0f, 2.0f};
  std::vector<float> beta{1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> y(4);
  ops::layernorm(x, gamma, beta, y);
  float mean = 0.0f;
  for (float v : y) mean += v;
  mean /= 4.0f;
  EXPECT_NEAR(mean, 1.0f, 1e-4f);  // beta shifts mean to 1
  float var = 0.0f;
  for (float v : y) var += (v - mean) * (v - mean);
  var /= 4.0f;
  EXPECT_NEAR(std::sqrt(var), 2.0f, 1e-2f);  // gamma scales stddev to 2
}

TEST(Ops, GeluKnownValues) {
  EXPECT_NEAR(ops::gelu(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(ops::gelu(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(ops::gelu(-1.0f), -0.1588f, 1e-3f);
  EXPECT_NEAR(ops::gelu(10.0f), 10.0f, 1e-3f);
}

TEST(Ops, GeluGradMatchesFiniteDifference) {
  for (float x : {-2.0f, -0.5f, 0.0f, 0.7f, 2.5f}) {
    const float h = 1e-3f;
    const float fd = (ops::gelu(x + h) - ops::gelu(x - h)) / (2.0f * h);
    EXPECT_NEAR(ops::gelu_grad(x), fd, 1e-3f);
  }
}

TEST(Ops, CrossEntropyUniformLogitsIsLogVocab) {
  Tensor logits({3, 10}, 0.0f);
  std::vector<int> targets{1, 5, 9};
  EXPECT_NEAR(ops::cross_entropy(logits, targets), std::log(10.0), 1e-6);
}

TEST(Ops, CrossEntropyRewardsCorrectLogit) {
  Tensor logits({1, 4}, 0.0f);
  logits.at(0, 2) = 10.0f;
  std::vector<int> target_hit{2}, target_miss{0};
  EXPECT_LT(ops::cross_entropy(logits, target_hit), 0.01);
  EXPECT_GT(ops::cross_entropy(logits, target_miss), 5.0);
}

TEST(Ops, CrossEntropyValidatesTargets) {
  Tensor logits({1, 4}, 0.0f);
  std::vector<int> bad{7};
  EXPECT_THROW(ops::cross_entropy(logits, bad), std::logic_error);
}

TEST(Ops, AddAndScaleInplace) {
  std::vector<float> y{1.0f, 2.0f};
  std::vector<float> x{3.0f, 4.0f};
  ops::add_inplace(y, x);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  ops::scale_inplace(y, 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

}  // namespace
}  // namespace topick
