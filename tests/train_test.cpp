#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "train/checkpoint.h"
#include "train/corpus.h"
#include "train/trainer.h"

namespace topick::train {
namespace {

ModelConfig grad_check_config() {
  ModelConfig c;
  c.name = "gradcheck";
  c.n_layer = 2;
  c.n_head = 2;
  c.d_model = 16;
  c.d_ff = 32;
  c.vocab = 12;
  c.max_seq = 16;
  return c;
}

TrainConfig small_train_config() {
  TrainConfig t;
  t.seq_len = 12;
  t.steps = 5;
  t.batch_docs = 2;
  return t;
}

TEST(Corpus, DocumentsStartWithBosAndStayInVocab) {
  CorpusConfig config;
  Corpus corpus(config);
  Rng rng(1);
  for (const auto& doc : corpus.make_documents(rng, 8)) {
    ASSERT_EQ(doc.front(), 0);
    ASSERT_EQ(static_cast<int>(doc.size()), config.doc_len);
    for (int tok : doc) {
      ASSERT_GE(tok, 0);
      ASSERT_LT(tok, config.vocab);
    }
    // <bos> appears only at position 0.
    for (std::size_t i = 1; i < doc.size(); ++i) ASSERT_NE(doc[i], 0);
  }
}

TEST(Corpus, ContainsRepeatedSpans) {
  CorpusConfig config;
  config.copy_start_prob = 0.15;
  Corpus corpus(config);
  Rng rng(2);
  int docs_with_repeat = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto doc = corpus.make_document(rng);
    // Look for any 6-gram that appears twice.
    std::set<std::vector<int>> seen;
    bool repeat = false;
    for (std::size_t i = 1; i + 6 <= doc.size(); ++i) {
      std::vector<int> gram(doc.begin() + static_cast<long>(i),
                            doc.begin() + static_cast<long>(i + 6));
      if (!seen.insert(gram).second) {
        repeat = true;
        break;
      }
    }
    docs_with_repeat += repeat;
  }
  EXPECT_GE(docs_with_repeat, 7);
}

TEST(Corpus, MarkovBackgroundIsSkewed) {
  CorpusConfig config;
  config.copy_start_prob = 0.0;  // pure Markov
  Corpus corpus(config);
  Rng rng(3);
  const auto doc = corpus.make_document(rng);
  // The skewed successor table makes some bigrams much more common than a
  // uniform baseline; verify by counting distinct successors of a frequent
  // token.
  std::vector<std::set<int>> successors(
      static_cast<std::size_t>(config.vocab));
  for (std::size_t i = 1; i + 1 < doc.size(); ++i) {
    successors[static_cast<std::size_t>(doc[i])].insert(doc[i + 1]);
  }
  for (const auto& s : successors) {
    EXPECT_LE(s.size(), static_cast<std::size_t>(config.branch));
  }
}

TEST(Corpus, InvalidConfigThrows) {
  CorpusConfig config;
  config.branch = 1;
  EXPECT_THROW(Corpus{config}, std::logic_error);
}

// The decisive correctness test: analytic gradients match central finite
// differences for a sample of parameters in every tensor class.
TEST(Trainer, GradientsMatchFiniteDifferences) {
  const auto model_config = grad_check_config();
  TrainConfig train_config = small_train_config();
  Trainer trainer(model_config, train_config);

  const std::vector<int> tokens{0, 3, 7, 1, 9, 4, 4, 2, 11, 5, 6, 8, 3};

  // Analytic gradients.
  trainer.accumulate_sequence(tokens);
  auto& grads = trainer.gradients();

  // Probe a handful of parameters across structurally different tensors.
  struct Probe {
    float* weight;
    float analytic;
    const char* name;
  };
  auto& w = trainer.weights();
  std::vector<Probe> probes{
      {&w.tok_emb.at(3, 5), grads.tok_emb.at(3, 5), "tok_emb"},
      {&w.pos_emb.at(2, 7), grads.pos_emb.at(2, 7), "pos_emb"},
      {&w.layers[0].wq.at(4, 9), grads.layers[0].wq.at(4, 9), "wq0"},
      {&w.layers[0].wk.at(1, 2), grads.layers[0].wk.at(1, 2), "wk0"},
      {&w.layers[0].wv.at(8, 3), grads.layers[0].wv.at(8, 3), "wv0"},
      {&w.layers[0].wo.at(0, 11), grads.layers[0].wo.at(0, 11), "wo0"},
      {&w.layers[0].bq.at(6), grads.layers[0].bq.at(6), "bq0"},
      {&w.layers[1].w_ff1.at(17, 4), grads.layers[1].w_ff1.at(17, 4), "wff1"},
      {&w.layers[1].w_ff2.at(3, 21), grads.layers[1].w_ff2.at(3, 21), "wff2"},
      {&w.layers[1].b_ff1.at(9), grads.layers[1].b_ff1.at(9), "bff1"},
      {&w.layers[0].ln1_gamma.at(4), grads.layers[0].ln1_gamma.at(4), "ln1g"},
      {&w.layers[1].ln2_beta.at(2), grads.layers[1].ln2_beta.at(2), "ln2b"},
      {&w.lnf_gamma.at(10), grads.lnf_gamma.at(10), "lnfg"},
  };

  for (const auto& probe : probes) {
    const float h = 1e-3f;
    const float original = *probe.weight;
    *probe.weight = original + h;
    const double loss_plus = trainer.accumulate_sequence(tokens);
    trainer.gradients() = Gradients::zeros_like(w);  // discard
    *probe.weight = original - h;
    const double loss_minus = trainer.accumulate_sequence(tokens);
    trainer.gradients() = Gradients::zeros_like(w);
    *probe.weight = original;

    const double fd = (loss_plus - loss_minus) / (2.0 * h);
    EXPECT_NEAR(probe.analytic, fd,
                2e-3 + 0.05 * std::abs(fd))
        << "parameter " << probe.name;
  }
}

TEST(Trainer, LossDecreasesOverTraining) {
  ModelConfig model_config = grad_check_config();
  model_config.vocab = 32;
  TrainConfig train_config;
  train_config.seq_len = 14;
  train_config.batch_docs = 4;
  train_config.lr = 5e-3f;

  CorpusConfig corpus_config;
  corpus_config.vocab = model_config.vocab;
  corpus_config.doc_len = 15;
  Corpus corpus(corpus_config);
  Rng rng(5);

  Trainer trainer(model_config, train_config);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    const double loss = trainer.train_step(corpus.make_documents(rng, 4));
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first - 0.3) << "training did not reduce loss";
}

TEST(Trainer, ForwardLogitsMatchIncrementalDecoder) {
  // The trainer's teacher-forced forward and the KV-cache decoder are two
  // implementations of the same function.
  const auto model_config = grad_check_config();
  Trainer trainer(model_config, small_train_config());
  const std::vector<int> tokens{0, 5, 2, 8, 1, 10};

  const Tensor logits = trainer.forward_logits(tokens);

  // Re-derive via accumulate path: evaluate() uses the decoder, so instead
  // compare against a manual decode with the same weights.
  Transformer model(&trainer.weights());
  model.begin_sequence();
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const auto step = model.decode_step(tokens[t]);
    for (std::size_t v = 0; v < step.size(); ++v) {
      ASSERT_NEAR(logits.at(t, v), step[v], 1e-4f);
    }
  }
}

TEST(Trainer, EvaluateMatchesSequenceNll) {
  const auto model_config = grad_check_config();
  TrainConfig cfg = small_train_config();
  Trainer trainer(model_config, cfg);
  const std::vector<std::vector<int>> docs{{0, 3, 7, 1, 9, 4}};
  Transformer model(&trainer.weights());
  const double direct = model.sequence_nll(docs[0]);
  EXPECT_NEAR(trainer.evaluate(docs), direct, 1e-9);
}

TEST(Trainer, GradClipBoundsGlobalNorm) {
  const auto model_config = grad_check_config();
  TrainConfig cfg = small_train_config();
  cfg.grad_clip = 0.01f;  // aggressive clip
  Trainer trainer(model_config, cfg);
  const std::vector<std::vector<int>> batch{{0, 3, 7, 1, 9, 4, 4, 2}};
  // One step should apply without blowing up weights.
  const double loss1 = trainer.train_step(batch);
  const double loss2 = trainer.train_step(batch);
  EXPECT_TRUE(std::isfinite(loss1));
  EXPECT_TRUE(std::isfinite(loss2));
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const auto model_config = grad_check_config();
  Trainer trainer(model_config, small_train_config());
  const auto path =
      (std::filesystem::temp_directory_path() / "topick_ckpt_test.bin")
          .string();
  save_checkpoint(trainer.weights(), path);
  ASSERT_TRUE(checkpoint_exists(path));

  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.config.n_layer, model_config.n_layer);
  EXPECT_EQ(loaded.config.vocab, model_config.vocab);
  // Logits identical for identical inputs.
  Transformer a(&trainer.weights()), b(&loaded);
  a.begin_sequence();
  b.begin_sequence();
  const auto la = a.decode_step(3);
  const auto lb = b.decode_step(3);
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_FLOAT_EQ(la[i], lb[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/path/weights.bin"),
               std::runtime_error);
}

TEST(TrainPipeline, TinyRunProducesFiniteMetrics) {
  ModelConfig model_config = grad_check_config();
  TrainConfig train_config = small_train_config();
  train_config.steps = 3;
  const auto trained = train_tiny_lm(model_config, train_config);
  EXPECT_TRUE(std::isfinite(trained.final_train_loss));
  EXPECT_TRUE(std::isfinite(trained.heldout_nll));
  EXPECT_EQ(trained.weights.layers.size(),
            static_cast<std::size_t>(model_config.n_layer));
}

}  // namespace
}  // namespace topick::train
