#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/traffic.h"
#include "common/stats.h"
#include "workload/generator.h"
#include "workload/zoo.h"

namespace topick {
namespace {

TEST(Workload, InstanceShapesMatchParams) {
  wl::WorkloadParams params;
  params.context_len = 64;
  params.head_dim = 32;
  wl::Generator gen(params);
  Rng rng(1);
  const auto inst = gen.make_instance(rng);
  EXPECT_EQ(inst.len, 64u);
  EXPECT_EQ(inst.head_dim, 32u);
  EXPECT_EQ(inst.q.size(), 32u);
  EXPECT_EQ(inst.keys.size(), 64u * 32u);
  EXPECT_EQ(inst.values.size(), 64u * 32u);
}

TEST(Workload, BackSolvedScoresHitTargets) {
  wl::WorkloadParams params;
  params.context_len = 32;
  params.head_dim = 64;
  wl::Generator gen(params);
  Rng rng(2);
  const auto inst = gen.make_instance(rng);
  const double inv_sqrt_d = 1.0 / std::sqrt(64.0);
  for (std::size_t i = 0; i < inst.len; ++i) {
    double dot = 0.0;
    for (std::size_t j = 0; j < 64; ++j) {
      dot += static_cast<double>(inst.q[j]) * inst.keys[i * 64 + j];
    }
    EXPECT_NEAR(dot * inv_sqrt_d, inst.target_scores[i], 1e-3)
        << "token " << i;
  }
}

TEST(Workload, LocalityBoostsRecentAndFirstTokens) {
  wl::WorkloadParams params;
  params.context_len = 256;
  wl::Generator gen(params);
  Rng rng(3);
  RunningStat recent, first, middle;
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = gen.make_instance(rng);
    first.add(inst.target_scores[0]);
    recent.add(inst.target_scores[inst.len - 1]);
    for (std::size_t i = 32; i < inst.len - 32; ++i) {
      middle.add(inst.target_scores[i]);
    }
  }
  // The configured boosts should show up (at least half, after noise).
  EXPECT_GT(first.mean(), middle.mean() + 0.5 * params.sink_boost);
  EXPECT_GT(recent.mean(), middle.mean() + 0.5 * params.recency_boost);
}

TEST(Workload, InstanceSpreadVaries) {
  // Fig. 3: dominant-token counts differ widely across instances.
  wl::WorkloadParams params;
  params.context_len = 1024;
  wl::Generator gen(params);
  Rng rng(4);
  std::vector<double> dominant_counts;
  for (int trial = 0; trial < 24; ++trial) {
    const auto inst = gen.make_instance(rng);
    // Count tokens with softmax probability above 1e-3.
    double m = inst.target_scores[0];
    for (double s : inst.target_scores) m = std::max(m, s);
    double denom = 0.0;
    for (double s : inst.target_scores) denom += std::exp(s - m);
    int dominant = 0;
    for (double s : inst.target_scores) {
      if (std::exp(s - m) / denom > 1e-3) ++dominant;
    }
    dominant_counts.push_back(dominant);
  }
  const double lo = percentile(dominant_counts, 10.0);
  const double hi = percentile(dominant_counts, 90.0);
  EXPECT_GT(hi, 1.5 * lo) << "instance variability collapsed";
  const double lo_min = percentile(dominant_counts, 0.0);
  const double hi_max = percentile(dominant_counts, 100.0);
  EXPECT_GT(hi_max, 2.0 * lo_min) << "instance variability collapsed";
}

TEST(Workload, ContextOverrideShortensInstance) {
  wl::WorkloadParams params;
  params.context_len = 512;
  wl::Generator gen(params);
  Rng rng(5);
  const auto inst = gen.make_instance(rng, 100);
  EXPECT_EQ(inst.len, 100u);
}

TEST(Workload, InvalidParamsThrow) {
  wl::WorkloadParams params;
  params.context_len = 0;
  EXPECT_THROW(wl::Generator{params}, std::logic_error);
}

TEST(Zoo, HasEightEntriesWithPaperContexts) {
  const auto zoo = wl::workload_zoo();
  ASSERT_EQ(zoo.size(), 8u);
  EXPECT_EQ(zoo[0].eval_context, 1024);  // GPT2
  EXPECT_EQ(zoo[1].eval_context, 1024);
  for (std::size_t i = 2; i < 8; ++i) EXPECT_EQ(zoo[i].eval_context, 2048);
  for (const auto& entry : zoo) {
    EXPECT_GT(entry.reference_ppl, 0.0);
    EXPECT_EQ(entry.workload.head_dim, entry.model.head_dim());
  }
}

TEST(Zoo, Gpt2MediumEntryForFig9) {
  const auto entry = wl::gpt2_medium_entry();
  EXPECT_EQ(entry.model.name, "GPT2-Medium");
  EXPECT_EQ(entry.model.head_dim(), 64);
}

TEST(Traffic, KvFractionGrowsWithBatch) {
  const auto config = zoo_config("GPT2-XL");
  const auto b1 = an::generation_step_traffic(config, 1, 1024);
  const auto b64 = an::generation_step_traffic(config, 64, 1024);
  EXPECT_LT(b1.kv_fraction(), 0.15);
  EXPECT_GT(b64.kv_fraction(), 0.80);
  EXPECT_GT(b64.kv_fraction(), b1.kv_fraction());
}

TEST(Traffic, FractionsSumToOne) {
  const auto config = zoo_config("OPT-6.7B");
  const auto t = an::generation_step_traffic(config, 16, 2048);
  EXPECT_NEAR(t.kv_fraction() + t.weight_fraction() + t.embedding_fraction(),
              1.0, 1e-12);
}

TEST(Traffic, KvBytesLinearInBatch) {
  const auto config = zoo_config("OPT-2.7B");
  const auto b2 = an::generation_step_traffic(config, 2, 2048);
  const auto b8 = an::generation_step_traffic(config, 8, 2048);
  EXPECT_NEAR(b8.kv_bytes / b2.kv_bytes, 4.0, 1e-9);
  EXPECT_NEAR(b8.weight_bytes, b2.weight_bytes, 1e-9);
}

TEST(Traffic, TwelveBitKvShrinksTraffic) {
  const auto config = zoo_config("LLaMa-2-7B");
  const auto fp16 = an::generation_step_traffic(config, 8, 4096, 16, 16);
  const auto q12 = an::generation_step_traffic(config, 8, 4096, 16, 12);
  EXPECT_NEAR(fp16.kv_bytes / q12.kv_bytes, 16.0 / 12.0, 1e-9);
}

TEST(Traffic, RejectsBadArguments) {
  const auto config = zoo_config("GPT2-Large");
  EXPECT_THROW(an::generation_step_traffic(config, 0, 1024), std::logic_error);
  EXPECT_THROW(an::generation_step_traffic(config, 1, 99999), std::logic_error);
}

}  // namespace
}  // namespace topick
